"""Multi-process serving runtime: worker pool over shared-memory arenas.

Everything the repo measured before this module ran in one Python
process, so every QPS figure was simulated-clock only.  This runtime
puts the columnar fast path under *real* concurrency, in the shape
production stacks use (TorchRec inference: a batching queue feeding a
pool of executor workers):

* the **front-end** (one process) runs the shared admission pass
  (:func:`~repro.serving.queue.iter_microbatch_arenas`), packs each
  released microbatch into a shared-memory segment
  (:meth:`~repro.serving.arena.RequestArena.to_shm`), and dispatches
  ``(seq, handle)`` tasks round-robin over bounded *per-worker* task
  queues (single producer, single consumer each — a worker that dies
  holding its queue's reader lock poisons only its own queue, which
  the self-healing supervisor discards and replaces at respawn;
  a shared MPMC queue would deadlock the whole pool);
* each **worker** process attaches the segment zero-copy, runs the
  executor's stateless *classification* lanes (tier binning, cache and
  staging fast lanes, replica-cut membership) on the batch, and ships
  the small per-table count matrices back on a results queue;
* the front-end **aggregator** replays the stateful *reduction* — count
  pooling, least-loaded replica routing, the single simulated engine
  clock — strictly in release (``seq``) order.

That classification/reduction split is what makes worker count a pure
throughput knob: replica routing and the busy-clock are sequential
cross-batch state, so they stay in one place, and the merged
:class:`~repro.serving.metrics.ServingMetrics` are **bit-identical** to
a single-process :meth:`~repro.serving.server.LookupServer.serve_arenas`
run of the same stream at any worker count — the parity the
cross-process test suite pins.  The processes parallelize the physical
CPU work (the per-lookup classification, which dominates), not the
simulated topology.

Two serving modes:

* :meth:`MultiProcessServer.serve_arenas` — closed-loop/throughput
  mode: dispatch as fast as the bounded queue admits.  Wall-clock QPS
  of this mode is what ``bench_serving_mp`` gates on.
* :meth:`MultiProcessServer.serve_paced` — open-loop mode: each
  microbatch is offered at the wall-clock time its simulated release
  dictates; when the task queue is full the batch is **shed** (rejected
  newest-first, at batch granularity) instead of queued, so overload
  keeps the queue bounded by construction and
  ``offered == served + shed`` exactly.

The plan is fixed for the lifetime of the pool (drift-triggered
replanning remains a single-process feature; a replan would invalidate
every worker's executor mid-stream).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Iterable, Iterator

import numpy as np

from repro.engine.executor import ShardedExecutor
from repro.engine.ranked import RankRemapper
from repro.serving.arena import RequestArena, ShmArena
from repro.serving.faults import FaultInjector, FaultSchedule
from repro.serving.metrics import ServingMetrics
from repro.serving.queue import iter_microbatch_arenas
from repro.serving.server import LookupServer, ServingConfig


class WorkerCrashError(RuntimeError):
    """The worker pool is beyond self-healing.

    The supervisor replaces crashed workers (bounded retries with
    exponential backoff, in-flight batches requeued); this error means
    the respawn budget is exhausted — or the pool hung with work
    outstanding — so the front-end aborts instead of blocking forever
    on the results queue, the hang-free failure mode the stress suite
    asserts.  Construct the pool with ``max_respawns=0`` to make any
    crash fatal immediately (the pre-self-healing behavior).
    """


def _worker_main(worker_id, spec, task_queue, result_queue):
    """Worker process body: classify microbatches until told to stop.

    Builds its own :class:`~repro.engine.executor.ShardedExecutor` from
    the picklable ``spec`` (spawn-safe; under fork this is cheap and
    keeps the code path identical), then loops: attach the task's
    shared-memory arena, run the stateless classification lanes, close
    the mapping, ship the count matrices back.  A ``None`` task is the
    shutdown sentinel; a negative seq is the scripted-crash sentinel
    (``worker_kill`` drills — hard ``os._exit(1)``, no cleanup).
    Per-task exceptions are reported as ``err`` results rather than
    killing the worker; only queue-level failures end the loop.

    A vanished segment (``FileNotFoundError`` on attach) is reported as
    a ``gone`` result instead of an error: after a crash-triggered
    requeue the same seq can sit in the task queue twice, and whichever
    copy loses the race attaches a segment the front-end has already
    retired.  The front-end drops ``gone`` results for satisfied seqs.
    """
    model, plan, profile, topology, cache, staging, vectorized = spec
    executor = ShardedExecutor(
        model, plan, profile, topology,
        cache=cache, staging=staging,
        vectorized=vectorized, ranker=RankRemapper(profile),
    )
    while True:
        task = task_queue.get()
        if task is None:
            break
        seq, handle = task
        if seq < 0:
            # Scripted worker_kill: die hard (no cleanup, exit code 1)
            # at a point where no queue lock is held — get() released
            # the reader lock before returning.  SIGKILL-ing a worker
            # blocked *inside* get() would leave the lock held forever.
            os._exit(1)
        try:
            shm = ShmArena.attach(handle)
            try:
                counts, hits, replicas, cuts = executor.classify_batch(
                    shm.arena.batch
                )
            finally:
                shm.close()
            result_queue.put(
                ("ok", seq, worker_id, counts, hits, replicas, cuts)
            )
        except FileNotFoundError:
            result_queue.put(("gone", seq, worker_id))
        except Exception as exc:  # surfaced, never swallowed into a hang
            result_queue.put(
                ("err", seq, worker_id, f"{type(exc).__name__}: {exc}")
            )


class MultiProcessServer:
    """Serve a fixed sharding plan with a pool of worker processes.

    Construction mirrors :class:`~repro.serving.server.LookupServer`
    (same ``plan=``/``sharder=`` choice, cache/staging/replication
    lanes, :class:`~repro.serving.server.ServingConfig` tunables) — a
    ``sharder`` is used once to build the initial plan and then
    dropped, because the pool serves a frozen plan.  The front-end
    keeps an in-process :class:`LookupServer` as the aggregation spine:
    its executor performs the sequential reductions and its metrics
    object accumulates the merged results, so summaries and reports
    come out in exactly the single-process schema.

    Args:
        model, profile, topology, plan, sharder, config, cache,
        staging, replication, vectorized: as for ``LookupServer``.
        workers: worker process count (>= 1).
        queue_depth: aggregate task-queue bound (default
            ``2 * workers``), split evenly across the per-worker
            queues — the backpressure knob; also what overload
            shedding pushes against in paced mode.
        start_method: multiprocessing start method (``"fork"``,
            ``"spawn"``, ...); ``None`` uses the platform default.
        result_timeout_s: longest the front-end will wait on the
            results queue with work outstanding before declaring the
            pool wedged (:class:`WorkerCrashError`).
        chaos: optional :class:`~repro.serving.faults.FaultSchedule`.
            ``worker_kill`` events SIGKILL pool workers on the serving
            clock (the self-healing supervisor's drill); device events
            are applied to the aggregation spine's executor in batch
            order — replicated lookups reroute and drops are counted,
            but the pool serves a *frozen* plan, so there is no
            emergency replan here (that is the single-process
            :class:`~repro.serving.server.LookupServer`'s job).
        max_respawns: total crashed-worker replacements the supervisor
            may perform across the pool's lifetime before a crash
            becomes fatal (:class:`WorkerCrashError`); ``0`` disables
            self-healing.
        respawn_backoff_s: base of the exponential backoff slept
            before each respawn (doubles per respawn, capped at 1 s).
        overload: optional :class:`~repro.serving.overload.
            OverloadControl`, as for ``LookupServer``.  Admission runs
            on the aggregation spine; when deadline/priority shedding
            applies to a stream, the front-end drains all in-flight
            batches before each admission decision (lockstep) so the
            controller sees exactly the single-process backlog —
            brownout-only control keeps full classify parallelism
            because its transform happens at in-order reduction time.
    """

    #: poll granularity for result waits and crash checks (seconds).
    _POLL_S = 0.05

    def __init__(
        self,
        model,
        profile,
        topology,
        plan=None,
        sharder=None,
        config: ServingConfig | None = None,
        cache=None,
        staging=None,
        replication=None,
        vectorized: bool = True,
        workers: int = 2,
        queue_depth: int | None = None,
        start_method: str | None = None,
        result_timeout_s: float = 30.0,
        chaos: FaultSchedule | None = None,
        max_respawns: int = 3,
        respawn_backoff_s: float = 0.05,
        overload=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if respawn_backoff_s < 0:
            raise ValueError("respawn_backoff_s must be >= 0")
        if chaos is not None:
            chaos.validate_targets(
                topology.num_devices, num_workers=workers
            )
        spine = LookupServer(
            model, profile, topology,
            plan=plan, sharder=sharder, config=config,
            cache=cache, staging=staging, replication=replication,
            vectorized=vectorized,
            # The spine replays the device events in batch order; worker
            # events are the supervisor's to fire.
            chaos=(
                FaultSchedule(chaos.device_events)
                if chaos is not None and chaos.device_events
                else None
            ),
            overload=overload,
        )
        # Freeze the plan: the pool never replans, so the spine's drift
        # machinery (monitor, profiler, sharder) is dropped and its
        # _execute-equivalent below skips the observation branch.
        spine.sharder = None
        spine.monitor = None
        spine._profiler = None
        self._spine = spine
        self.workers = int(workers)
        self.queue_depth = (
            int(queue_depth) if queue_depth is not None else 2 * self.workers
        )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.result_timeout_s = float(result_timeout_s)
        self.chaos = chaos
        self._worker_faults = (
            FaultInjector(FaultSchedule(chaos.worker_events))
            if chaos is not None and chaos.worker_events
            else None
        )
        self._worker_chaos_armed = self._worker_faults is not None
        self.max_respawns = int(max_respawns)
        self.respawn_backoff_s = float(respawn_backoff_s)
        #: workers replaced by the supervisor so far (pool lifetime).
        self.respawn_count = 0
        #: human-readable supervisor log (kills observed, respawns) —
        #: kept off ServingMetrics so merged metrics stay bit-identical
        #: to a single-process run of the same stream.
        self.worker_fault_log: list[str] = []
        self._ctx = (
            mp.get_context(start_method)
            if start_method is not None
            else mp.get_context()
        )
        self._spec = (
            model, spine.plan, spine.profile, topology,
            cache, staging, bool(vectorized),
        )
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None
        # Per-worker task-queue bound: the aggregate queue_depth is
        # split across the pool's single-consumer queues.
        self._per_worker_depth = max(1, self.queue_depth // self.workers)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    @property
    def config(self) -> ServingConfig:
        return self._spine.config

    @property
    def plan(self):
        return self._spine.plan

    @property
    def metrics(self) -> ServingMetrics:
        return self._spine.metrics

    def reset_serving_state(self, rearm_chaos: bool = False) -> None:
        """Start an independent stream on the same plan and worker pool.

        Resets the aggregator spine (metrics, simulated clock, replica
        routing history, device fault state) without restarting workers
        — their classify pass is stateless, so only the front-end
        carries stream state.  As in the single-process server, the
        chaos script is disarmed unless ``rearm_chaos=True``; the
        supervisor's respawn budget and count are pool-lifetime and
        not reset.
        """
        self._spine.reset_serving_state(rearm_chaos=rearm_chaos)
        if self._worker_faults is not None:
            self._worker_faults.reset()
            self._worker_chaos_armed = rearm_chaos

    def start(self) -> "MultiProcessServer":
        """Spawn the worker pool (idempotent)."""
        if self.started:
            return self
        # Start the parent's shared-memory resource tracker *before*
        # forking, so workers inherit it instead of lazily spawning
        # their own: attach-side registrations then collapse (set
        # semantics) with the owner's, and the owner's unlink clears
        # the single entry — no spurious "leaked shared_memory object"
        # warnings at worker exit, while the tracker's crash-cleanup
        # net stays intact.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._task_qs = [
            self._ctx.Queue(maxsize=self._per_worker_depth)
            for _ in range(self.workers)
        ]
        self._result_q = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, self._spec, self._task_qs[i], self._result_q),
                daemon=True,
                name=f"recshard-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the pool down cleanly (idempotent).

        Live workers get one ``None`` sentinel each and a join window;
        stragglers (and already-crashed workers) are terminated.  Queues
        are drained and closed so their feeder threads exit.
        """
        if not self.started:
            return
        deadline = time.perf_counter() + timeout_s
        # One sentinel per live worker, on its own queue.  Retry while
        # the worker drains a full queue rather than dropping the
        # sentinel — a dropped sentinel would leave it blocked in
        # get() for the whole join window.
        owed = {
            i for i, p in enumerate(self._procs) if p.is_alive()
        }
        while owed and time.perf_counter() < deadline:
            for index in sorted(owed):
                try:
                    self._task_qs[index].put(None, timeout=0.05)
                    owed.discard(index)
                except queue_mod.Full:
                    pass
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.perf_counter()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._task_qs:
            # Task queues may be poisoned (a worker SIGKILLed inside
            # get() keeps the reader lock) — drain best-effort and
            # never wait on the feeder thread.
            try:
                while True:
                    q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                pass
            q.close()
            q.cancel_join_thread()
        try:
            while True:
                self._result_q.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            pass
        self._result_q.close()
        self._result_q.join_thread()
        self._procs = []
        self._task_qs = []
        self._result_q = None

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker (SIGKILL, no cleanup).

        The blast radius is the worker's own single-consumer task
        queue (discarded at respawn); scripted ``worker_kill`` drills
        prefer the lock-safe die sentinel and only fall back to this.
        """
        if not self.started:
            raise ValueError("pool is not started")
        self._procs[index].kill()
        self._procs[index].join(timeout=5.0)

    def __enter__(self) -> "MultiProcessServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving modes
    # ------------------------------------------------------------------
    def serve_arenas(self, arenas: Iterable[RequestArena]) -> ServingMetrics:
        """Closed-loop mode: dispatch as fast as the queue admits.

        Batch formation, execution semantics, and merged metrics are
        bit-identical to the single-process
        :meth:`~repro.serving.server.LookupServer.serve_arenas` on the
        same stream; only the wall-clock cost of classification is
        spread across the pool.  Raises :class:`WorkerCrashError` if a
        worker dies (or the pool hangs) with work outstanding.
        """
        self.start()
        released = iter_microbatch_arenas(
            arenas, self.config.max_batch_size, self.config.max_delay_ms
        )
        return self._run(released, paced=False, speed=1.0)

    def serve_paced(
        self, arenas: Iterable[RequestArena], speed: float = 1.0
    ) -> ServingMetrics:
        """Open-loop mode: offer batches on the simulated release clock.

        Each microbatch is offered at the wall-clock time its simulated
        ``trigger_ms`` maps to (``speed`` simulated ms per wall ms; 2.0
        replays a stream twice as fast).  A full task queue sheds the
        offered batch — reject-newest, batch granularity, counted via
        :meth:`~repro.serving.metrics.ServingMetrics.record_shed` — so
        sustained overload keeps queueing bounded instead of unbounded.
        Shed batches never execute; accounting stays exact:
        ``offered == metrics.num_requests + metrics.shed_requests``.
        """
        if speed <= 0:
            raise ValueError("speed must be > 0")
        self.start()
        released = iter_microbatch_arenas(
            arenas, self.config.max_batch_size, self.config.max_delay_ms
        )
        return self._run(released, paced=True, speed=speed)

    # ------------------------------------------------------------------
    # Front-end event loop
    # ------------------------------------------------------------------
    def _run(
        self,
        released: Iterator[tuple[RequestArena, float]],
        paced: bool,
        speed: float,
    ) -> ServingMetrics:
        """Dispatch released microbatches, merge results in seq order.

        ``pending`` holds each in-flight batch's owner-side segment plus
        the accounting inputs (arrivals, trigger); ``results`` holds
        classified counts that arrived out of order.  The aggregation
        cursor advances over consecutive sequence numbers only, so
        reductions replay in release order no matter which worker
        finishes first.  All exits — normal, worker crash, worker error
        — unlink every in-flight segment before returning or raising
        (the no-orphaned-``/dev/shm`` invariant the leak tests scan
        for).
        """
        pending: dict[
            int, tuple[ShmArena, np.ndarray, float, object, object]
        ] = {}
        results: dict[int, tuple] = {}
        cursor = 0  # next seq to account
        seq = 0
        wall_start = None
        first_trigger = None
        ctrl = self._spine._ovl
        try:
            for arena, trigger in released:
                if self._worker_chaos_armed:
                    self._fire_worker_faults(trigger, pending, results)
                if paced:
                    if wall_start is None:
                        wall_start = time.perf_counter()
                        first_trigger = trigger
                    due = wall_start + (trigger - first_trigger) / (
                        1e3 * speed
                    )
                    while True:
                        now = time.perf_counter()
                        if now >= due:
                            break
                        cursor = self._drain(pending, results, cursor)
                        self._check_workers(pending, results)
                        time.sleep(min(self._POLL_S, due - now))
                if ctrl is not None and ctrl.control.admission_for(
                    arena.has_qos
                ):
                    # Lockstep barrier: the controller's backlog and
                    # EWMA state must reflect every earlier batch —
                    # exactly what the single-process loop admits
                    # against — so admission decisions (and therefore
                    # the merged metrics) stay bit-identical at any
                    # worker count.
                    cursor = self._drain_all(pending, results, cursor)
                    arena = self._spine.admit_arena(arena, trigger)
                    if arena is None:
                        continue
                arrivals = np.array(arena.arrival_ms)
                # Register the owner segment in pending *immediately*:
                # from here every exit path (shed, crash, interrupt)
                # finds and retires it — no orphan window between
                # creating the segment and dispatching the task.
                owner = arena.to_shm()
                pending[seq] = (
                    owner, arrivals, trigger,
                    arena.deadline_ms, arena.priority,
                )
                task = (seq, owner.handle)
                if paced:
                    if not self._try_dispatch(seq, task):
                        # Overload: every worker queue is full — reject
                        # the newest batch outright.  Its seq is reused
                        # by the next dispatched batch (shed batches
                        # never enter the in-order accounting stream).
                        del pending[seq]
                        owner.close()
                        owner.unlink()
                        self.metrics.record_shed(
                            arena.num_requests,
                            cause="overflow",
                            priorities=arena.priority,
                        )
                        continue
                else:
                    while not self._try_dispatch(seq, task):
                        cursor = self._drain(pending, results, cursor)
                        self._check_workers(pending, results)
                        time.sleep(self._POLL_S)
                seq += 1
                cursor = self._drain(pending, results, cursor)
            # Stream exhausted: deliver any worker faults scheduled
            # beyond the last release, then wait out the in-flight tail.
            if self._worker_chaos_armed:
                self._fire_worker_faults(float("inf"), pending, results)
            cursor = self._drain_all(pending, results, cursor)
        except BaseException:
            self._abort(pending)
            raise
        return self.metrics

    def _drain_all(self, pending: dict, results: dict, cursor: int) -> int:
        """Block until every in-flight batch is accounted.

        Used at stream end and as the lockstep barrier before an
        overload-admission decision.  Raises
        :class:`WorkerCrashError` when the pool stops producing
        results with work outstanding.
        """
        waited = 0.0
        while pending or results:
            advanced = self._drain(
                pending, results, cursor, block_s=self._POLL_S
            )
            waited = 0.0 if advanced != cursor else waited + self._POLL_S
            cursor = advanced
            self._check_workers(pending, results)
            if waited >= self.result_timeout_s:
                raise WorkerCrashError(
                    f"no results for {self.result_timeout_s:.1f} s with "
                    f"{len(pending)} batches outstanding"
                )
        return cursor

    def _try_dispatch(self, seq: int, task) -> bool:
        """Offer a task to one alive worker, round-robin from ``seq``.

        Returns False when every alive worker's queue is full (the
        aggregate backpressure signal) or no worker is alive; the
        caller then drains results, heals the pool, and retries — or
        sheds, in paced mode.
        """
        for lane in range(self.workers):
            index = (seq + lane) % self.workers
            if not self._procs[index].is_alive():
                continue
            try:
                self._task_qs[index].put_nowait(task)
                return True
            except queue_mod.Full:
                continue
        return False

    def _drain(
        self,
        pending: dict,
        results: dict,
        cursor: int,
        block_s: float = 0.0,
    ) -> int:
        """Pull available results, release their segments, account in order.

        Returns the advanced sequence cursor.  A worker-reported ``err``
        result aborts the run (after segment cleanup, via the caller's
        except path).
        """
        self._pull_results(pending, results, block_s)
        while cursor in results:
            counts, hits, replicas, cuts = results.pop(cursor)
            _, arrivals, trigger, deadlines, priorities = pending.pop(cursor)
            self._account(
                counts, hits, replicas, cuts, trigger, arrivals,
                deadlines, priorities,
            )
            cursor += 1
        return cursor

    def _pull_results(
        self, pending: dict, results: dict, block_s: float = 0.0
    ) -> None:
        """Collect ready results and retire their segments (no accounting).

        Tolerates the duplicates a crash-triggered requeue can create:
        an ``ok``/``err`` for a seq that is no longer owed (already in
        ``results`` or already accounted out of ``pending``) is stale —
        its segment was retired when the first copy landed — and a
        ``gone`` result is a worker reporting exactly that staleness
        from its side.  Only an ``err`` for a seq still owed aborts.
        """
        while True:
            try:
                if block_s > 0:
                    item = self._result_q.get(timeout=block_s)
                    block_s = 0.0  # only the first get blocks
                else:
                    item = self._result_q.get_nowait()
            except queue_mod.Empty:
                break
            if item[0] == "gone":
                continue
            if item[0] == "err":
                _, err_seq, worker_id, message = item
                if err_seq in pending and err_seq not in results:
                    raise RuntimeError(
                        f"worker {worker_id} failed on batch {err_seq}: "
                        f"{message}"
                    )
                continue
            _, got_seq, _, counts, hits, replicas, cuts = item
            if got_seq not in pending or got_seq in results:
                continue
            # The worker is done with the segment; the owner retires it.
            owner = pending[got_seq][0]
            owner.close()
            owner.unlink()
            results[got_seq] = (counts, hits, replicas, cuts)

    def _account(
        self, counts, hits, replicas, cuts, trigger_ms, arrivals_ms,
        deadlines_ms=None, priorities=None,
    ):
        """Reduce one classified batch on the spine (sequential state).

        Mirrors ``LookupServer._execute`` exactly, with the executor's
        :meth:`~repro.engine.executor.ShardedExecutor.reduce_classified`
        standing in for ``run_batch`` — same busy-clock advance, same
        brownout decision point, same ``record_batch`` call — which is
        why the merged metrics match the single-process run bit for
        bit.
        """
        spine = self._spine
        start = max(trigger_ms, spine._busy_until_ms)
        if spine._chaos_armed:
            # Device events land here, in batch order on the simulated
            # clock — the same point the single-process loop applies
            # them.  The spine has no sharder, so a device failure runs
            # reroute-only degraded mode (no emergency replan on a
            # frozen plan).
            spine._apply_due_faults(trigger_ms, start)
        ctrl = spine._ovl
        brownout_now = False
        if ctrl is not None and ctrl.control.brownout:
            active = ctrl.update_brownout()
            if active != spine.executor.brownout_active:
                spine.executor.set_brownout(active)
                spine.metrics.record_brownout(start, active)
            brownout_now = active
        # Full classified lookup count, before the brownout/fault
        # reductions reshape the served matrix — the single-process
        # loop's ``batch.total_lookups``.
        total_classified = int(counts.sum())
        device_times, accesses, _, reps = spine.executor.reduce_classified(
            counts, hits, replicas, cuts
        )
        service = (
            float(device_times.max()) + spine.config.overhead_ms_per_batch
        )
        finish = start + service
        spine._busy_until_ms = finish
        faults_active = spine._chaos_armed and spine.executor.has_faults
        spine.metrics.record_batch(
            arrivals_ms,
            start_ms=start,
            finish_ms=finish,
            device_times_ms=device_times,
            total_lookups=int(accesses.sum()),
            tier_accesses=accesses,
            replica_accesses=(
                reps if spine.executor.replication is not None else None
            ),
            dropped_lookups=(
                spine.executor.last_dropped.copy() if faults_active else None
            ),
            deadlines_ms=deadlines_ms,
            priorities=priorities,
            browned_lookups=(
                spine.executor.last_browned.copy() if brownout_now else None
            ),
        )
        if ctrl is not None:
            ctrl.observe_batch(
                service,
                total_classified,
                finish - np.asarray(arrivals_ms, dtype=np.float64),
            )

    def _fire_worker_faults(
        self, trigger_ms: float, pending: dict, results: dict
    ) -> None:
        """Deliver scripted worker kills due by ``trigger_ms``.

        The die sentinel rides the victim's own task queue, so the
        worker finishes already-dequeued work and dies at a lock-free
        point (``os._exit(1)``, no cleanup, exit code 1) — the crash
        is real, but it cannot happen while the process holds a queue
        lock, which a mid-``get()`` SIGKILL would turn into a permanent
        pool deadlock.  A worker that fails to die inside the result
        timeout is SIGKILLed anyway (its queue is discarded at
        respawn).  The supervisor then heals the pool before dispatch
        continues, which is what makes the drill deterministic.
        """
        fired = False
        for event in self._worker_faults.pop_due(trigger_ms):
            self.worker_fault_log.append(event.describe())
            index = event.target
            proc = self._procs[index]
            deadline = time.perf_counter() + self.result_timeout_s
            delivered = False
            while proc.is_alive() and time.perf_counter() < deadline:
                if not delivered:
                    try:
                        self._task_qs[index].put_nowait((-1, None))
                        delivered = True
                    except queue_mod.Full:
                        pass
                self._pull_results(pending, results)
                proc.join(timeout=self._POLL_S)
            if proc.is_alive():  # wedged worker: fall back to SIGKILL
                self.kill_worker(index)
            fired = True
        if fired:
            self._check_workers(pending, results)

    def _check_workers(self, pending: dict, results: dict) -> None:
        """Self-healing supervisor: replace dead workers, requeue work.

        Each dead worker is replaced (exponential backoff, same worker
        id and queues) while the respawn budget lasts; every batch
        still owed is then requeued, because the front-end cannot know
        which seqs died with the worker.  Duplicates this creates are
        absorbed by :meth:`_pull_results`.  Budget exhausted →
        :class:`WorkerCrashError` (the caller's abort path unlinks all
        in-flight segments).
        """
        dead = [
            (index, proc)
            for index, proc in enumerate(self._procs)
            if not proc.is_alive()
        ]
        if not dead:
            return
        if self.respawn_count + len(dead) > self.max_respawns:
            detail = ", ".join(
                f"{proc.name} (exit {proc.exitcode})" for _, proc in dead
            )
            raise WorkerCrashError(
                f"worker(s) died with {len(pending)} batches in flight "
                f"and the respawn budget exhausted "
                f"({self.respawn_count}/{self.max_respawns} used): {detail}"
            )
        for index, proc in dead:
            time.sleep(
                min(self.respawn_backoff_s * 2**self.respawn_count, 1.0)
            )
            proc.join(timeout=1.0)
            # The dead worker's queue may hold undelivered tasks and —
            # if it was SIGKILLed inside get() — a permanently-held
            # reader lock.  Abandon it; owed batches are requeued below.
            old = self._task_qs[index]
            old.close()
            old.cancel_join_thread()
            self._task_qs[index] = self._ctx.Queue(
                maxsize=self._per_worker_depth
            )
            replacement = self._ctx.Process(
                target=_worker_main,
                args=(
                    index, self._spec, self._task_qs[index], self._result_q
                ),
                daemon=True,
                name=f"recshard-worker-{index}",
            )
            replacement.start()
            self._procs[index] = replacement
            self.respawn_count += 1
            self.worker_fault_log.append(
                f"respawned worker {index} "
                f"({self.respawn_count}/{self.max_respawns})"
            )
        self._requeue(pending, results)

    def _requeue(self, pending: dict, results: dict) -> None:
        """Re-dispatch every batch still owed after a worker crash.

        The shm segments of owed batches are still owner-held (they are
        only unlinked when a result lands), so re-sending the handle is
        safe; a worker that picks up a stale duplicate later reports
        ``gone``/duplicate and is ignored.
        """
        for seq in sorted(s for s in pending if s not in results):
            task = (seq, pending[seq][0].handle)
            while not self._try_dispatch(seq, task):
                self._pull_results(pending, results)
                if seq in results:
                    break  # landed after all — nothing to requeue
                if not any(p.is_alive() for p in self._procs):
                    # Nobody draining any queue; the next
                    # _check_workers pass deals with the new corpse.
                    return
                time.sleep(self._POLL_S)

    def _abort(self, pending: dict) -> None:
        """Error-path cleanup: no orphaned segments, no wedged pool."""
        for entry in pending.values():
            owner = entry[0]
            owner.close()
            owner.unlink()
        pending.clear()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self.close(timeout_s=1.0)
