"""Fault injection: scripted device/worker chaos on the serving clock.

ROADMAP item 5(c): production recommendation serving treats component
failure as routine, so recovery time and tail latency *during* a
failure must be first-class, measured numbers — not an assumption that
the stack survives.  This module is the scripting half of that drill:
a :class:`FaultSchedule` lists events pinned to the serving clock
(simulated milliseconds, the same clock microbatch triggers run on),
and a :class:`FaultInjector` replays them in order as the server's
event loop advances past each timestamp.

Event kinds:

* ``device_fail`` — the device stops serving: its home-lane lookups are
  *dropped* (counted, never silently lost), replicated lookups are
  rerouted by masking the device out of the least-loaded routing lane,
  and a :class:`~repro.serving.server.LookupServer` starts an emergency
  replan onto the surviving topology.
* ``device_degrade`` — the device serves at ``1/slowdown`` of its
  bandwidth (thermal throttling, a flapping link): its per-batch
  execution time is multiplied by ``slowdown``.
* ``device_recover`` — clears a prior fail/degrade of the device.
* ``worker_kill`` — SIGKILL one worker process of a
  :class:`~repro.serving.mp.MultiProcessServer` pool mid-stream (the
  self-healing supervisor's drill; meaningless single-process).

The CLI front door is :func:`parse_chaos_spec` (``repro serve --chaos
"fail@250:1,recover@900:1"``): a comma-separated list of
``kind@ms:target`` terms, where ``degrade`` carries its slowdown as
``kind@ms:target x factor`` spelled ``degrade@100:0x4`` (device 0 at
4x slower from t=100 ms).  Schedules validate eagerly so a typo is a
clean error before any worker forks.
"""

from __future__ import annotations

from dataclasses import dataclass

#: event kinds that target a simulated device.
DEVICE_KINDS = ("device_fail", "device_degrade", "device_recover")
#: event kinds that target a worker process of the multi-process pool.
WORKER_KINDS = ("worker_kill",)

_SPEC_ALIASES = {
    "fail": "device_fail",
    "degrade": "device_degrade",
    "recover": "device_recover",
    "kill": "worker_kill",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, pinned to the serving clock.

    Attributes:
        at_ms: simulated time the event fires (the injector delivers it
            with the first microbatch triggered at or after this time).
        kind: one of :data:`DEVICE_KINDS` + :data:`WORKER_KINDS`.
        target: device index (device kinds) or worker index
            (``worker_kill``).
        slowdown: service-time multiplier, ``device_degrade`` only.
    """

    at_ms: float
    kind: str
    target: int
    slowdown: float = 1.0

    def __post_init__(self):
        if self.kind not in DEVICE_KINDS + WORKER_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (have "
                f"{DEVICE_KINDS + WORKER_KINDS})"
            )
        if self.at_ms < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ms}")
        if self.target < 0:
            raise ValueError(f"fault target must be >= 0, got {self.target}")
        if self.kind == "device_degrade" and self.slowdown <= 1.0:
            raise ValueError(
                f"degrade slowdown must be > 1, got {self.slowdown}"
            )
        if self.kind != "device_degrade" and self.slowdown != 1.0:
            raise ValueError(f"{self.kind} takes no slowdown factor")

    @property
    def is_device_event(self) -> bool:
        return self.kind in DEVICE_KINDS

    def describe(self) -> str:
        """One-line human description (reports, logs)."""
        what = {
            "device_fail": f"device {self.target} fails",
            "device_degrade": (
                f"device {self.target} degrades {self.slowdown:g}x"
            ),
            "device_recover": f"device {self.target} recovers",
            "worker_kill": f"worker {self.target} killed",
        }[self.kind]
        return f"t={self.at_ms:g}ms: {what}"


def device_fail(at_ms: float, device: int) -> FaultEvent:
    """Script a device failure at simulated ``at_ms``."""
    return FaultEvent(at_ms=at_ms, kind="device_fail", target=device)


def device_degrade(at_ms: float, device: int, slowdown: float) -> FaultEvent:
    """Script a bandwidth degradation (service times x ``slowdown``)."""
    return FaultEvent(
        at_ms=at_ms, kind="device_degrade", target=device, slowdown=slowdown
    )


def device_recover(at_ms: float, device: int) -> FaultEvent:
    """Script recovery of a previously failed/degraded device."""
    return FaultEvent(at_ms=at_ms, kind="device_recover", target=device)


def worker_kill(at_ms: float, worker: int) -> FaultEvent:
    """Script a SIGKILL of one worker process (multi-process pools)."""
    return FaultEvent(at_ms=at_ms, kind="worker_kill", target=worker)


class FaultSchedule:
    """An ordered script of fault events for one serving run.

    Events are sorted by ``at_ms`` (stable, so same-timestamp events
    keep their scripted order).  A schedule is immutable shared
    configuration — the replay cursor lives in :class:`FaultInjector`,
    so one schedule can drive any number of runs.
    """

    def __init__(self, events=()):
        events = tuple(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"FaultSchedule holds FaultEvent items, got "
                    f"{type(event).__name__}"
                )
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at_ms)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def device_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.is_device_event)

    @property
    def worker_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if not e.is_device_event)

    def validate_targets(
        self, num_devices: int, num_workers: int = 0
    ) -> None:
        """Reject events whose targets do not exist in this deployment.

        ``num_workers == 0`` means single-process serving, where worker
        events are inexpressible — scheduling one is a configuration
        error surfaced here rather than a silently ignored line.
        """
        for event in self.events:
            if event.is_device_event:
                if event.target >= num_devices:
                    raise ValueError(
                        f"{event.describe()}: topology has only "
                        f"{num_devices} devices"
                    )
            elif num_workers <= 0:
                raise ValueError(
                    f"{event.describe()}: worker events require the "
                    f"multi-process runtime (--workers N)"
                )
            elif event.target >= num_workers:
                raise ValueError(
                    f"{event.describe()}: pool has only {num_workers} "
                    f"workers"
                )

    def describe(self) -> str:
        return "; ".join(e.describe() for e in self.events) or "(empty)"


class FaultInjector:
    """Replay cursor over a :class:`FaultSchedule`.

    The serving event loop calls :meth:`pop_due` with each microbatch's
    trigger time; every not-yet-delivered event with ``at_ms`` at or
    before that time is returned once, in schedule order.  Discrete-
    event semantics: an event between two batch triggers is delivered
    with the *later* batch (the first moment the server looks at the
    clock again), which is also what bounds detection latency and makes
    ``time_to_reroute`` a measured, nonzero number.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._cursor = 0

    @property
    def pending(self) -> int:
        """Events not yet delivered."""
        return len(self.schedule.events) - self._cursor

    def pop_due(self, now_ms: float) -> list[FaultEvent]:
        """All undelivered events with ``at_ms <= now_ms``, in order."""
        due = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].at_ms <= now_ms:
            due.append(events[self._cursor])
            self._cursor += 1
        return due

    def reset(self) -> None:
        """Rewind to the start of the schedule (new stream, same script)."""
        self._cursor = 0


def parse_chaos_spec(spec: str) -> FaultSchedule:
    """Parse a ``--chaos`` command-line spec into a schedule.

    Grammar: comma-separated ``kind@ms:target`` terms; ``degrade``
    appends its factor as ``:targetxfactor``.  Kinds are the short
    aliases ``fail``/``degrade``/``recover``/``kill`` or the full event
    names.  Examples::

        fail@250:1                    device 1 fails at t=250 ms
        degrade@100:0x4               device 0 serves 4x slower from t=100
        fail@250:1,recover@900:1      fail then recover
        kill@300:1                    worker 1 SIGKILLed at t=300

    Raises ``ValueError`` with the offending term on any malformed
    input — the CLI turns that into a clean error instead of a
    traceback from deep inside the serving loop.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("empty --chaos spec")
    events = []
    for term in spec.split(","):
        term = term.strip()
        if not term:
            raise ValueError(f"empty term in --chaos spec {spec!r}")
        kind_part, at_sep, rest = term.partition("@")
        kind = _SPEC_ALIASES.get(kind_part, kind_part)
        if not at_sep or kind not in DEVICE_KINDS + WORKER_KINDS:
            raise ValueError(
                f"bad --chaos term {term!r}: expected kind@ms:target with "
                f"kind one of {sorted(_SPEC_ALIASES)}"
            )
        time_part, target_sep, target_part = rest.partition(":")
        if not target_sep:
            raise ValueError(
                f"bad --chaos term {term!r}: missing ':target'"
            )
        slowdown = 1.0
        if kind == "device_degrade":
            target_part, x_sep, factor_part = target_part.partition("x")
            if not x_sep:
                raise ValueError(
                    f"bad --chaos term {term!r}: degrade needs a factor, "
                    f"e.g. degrade@100:0x4"
                )
            try:
                slowdown = float(factor_part)
            except ValueError:
                raise ValueError(
                    f"bad --chaos term {term!r}: factor {factor_part!r} "
                    f"is not a number"
                ) from None
        try:
            at_ms = float(time_part)
            target = int(target_part)
        except ValueError:
            raise ValueError(
                f"bad --chaos term {term!r}: expected kind@ms:target "
                f"with numeric ms and integer target"
            ) from None
        try:
            events.append(
                FaultEvent(
                    at_ms=at_ms, kind=kind, target=target, slowdown=slowdown
                )
            )
        except ValueError as error:
            raise ValueError(f"bad --chaos term {term!r}: {error}") from None
    return FaultSchedule(events)
