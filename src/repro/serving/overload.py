"""SLO-driven overload control for the serving front-end.

RecShard's thesis is that statistical knowledge beats reactive policy;
this module carries that past placement into *admission*.  Under
overload the PR-6 paced front-end could only tail-drop whole batches on
queue overflow — blind to deadlines, request value, and the option of
serving *degraded* instead of *not at all*.  Three cooperating
mechanisms replace that:

* **Deadline-aware admission** — an EWMA service-time estimator
  (ms per lookup, updated from every executed batch on the simulated
  clock) predicts each released microbatch's finish time given the
  engine backlog (``busy_until``).  Requests whose deadlines are
  already unmeetable are shed *early* with cause ``"deadline"``,
  before they waste engine time.

* **Priority-class shedding** — when the predicted worst-case latency
  of a batch exceeds ``slo_margin * slo_ms``, whole lowest-priority
  classes are shed (cause ``"priority"``) until the surviving work is
  predicted to fit.  Class 0 ("gold") is never priority-shed.

* **Brownout degraded mode** — a hysteresis controller watches the
  windowed p99 of served latencies against ``slo_ms`` (and reacts to
  ``device_degrade`` chaos events).  While active, cold-tier home-lane
  lookups are skipped by the executor (only fast-tier, staged, and
  replicated rows are served) and counted as ``browned_out_lookups`` —
  a measured quality cost, not a silent one.

Everything here is deterministic over the simulated clock: decisions
are pure functions of controller state, which itself is a fold over the
executed-batch sequence.  That is what lets the multi-process front-end
reproduce single-process admission decisions bit for bit (it drains all
in-flight work before admitting the next batch, so both runtimes fold
the same sequence — see :class:`~repro.serving.mp.MultiProcessServer`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Shed-cause keys, in reporting order.
SHED_CAUSES = ("overflow", "deadline", "priority")


def parse_priority_spec(spec: str) -> tuple[tuple[str, ...], tuple[float, ...]]:
    """Parse ``"gold=0.1,silver=0.3,bronze=0.6"`` into names and shares.

    Class index follows listing order (class 0 first, never shed);
    shares must be positive and sum to 1 (within 1e-6).
    """
    names: list[str] = []
    shares: list[float] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"bad priority class {part!r} (expected name=share)"
            )
        try:
            share = float(value)
        except ValueError:
            raise ValueError(
                f"bad share for priority class {name!r}: {value!r}"
            ) from None
        if share <= 0:
            raise ValueError(
                f"priority class {name!r} share must be > 0, got {share}"
            )
        if name in names:
            raise ValueError(f"duplicate priority class {name!r}")
        names.append(name)
        shares.append(share)
    if not names:
        raise ValueError("priority spec is empty")
    total = sum(shares)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"priority shares must sum to 1, got {total}")
    return tuple(names), tuple(shares)


@dataclass(frozen=True)
class OverloadControl:
    """Configuration of the overload-control layer (all knobs).

    Attributes:
        slo_ms: the latency objective; gates priority shedding and
            brownout (both need a target to defend).
        queue_limit_ms: when set, a batch whose predicted queueing
            delay (engine backlog at release) exceeds this bound is
            shed whole with cause ``"overflow"`` — the simulated-clock
            equivalent of PR-6's bounded-queue tail drop, and the
            baseline the deadline/priority mechanisms are gated
            against.
        deadline_shedding: shed requests predicted to miss their
            deadline (cause ``"deadline"``).
        priority_shedding: shed lowest classes first when the batch is
            predicted to blow ``slo_margin * slo_ms`` (cause
            ``"priority"``; requires ``slo_ms``).
        brownout: enable the degraded-mode hysteresis controller
            (requires ``slo_ms``).
        slo_margin: fraction of the SLO the admission controller
            defends (headroom absorbs estimator error).
        ewma_alpha: smoothing factor of the service-time estimator.
        brownout_enter: enter brownout when windowed p99 >= this
            multiple of the SLO.
        brownout_exit: leave brownout when windowed p99 <= this
            multiple of the SLO (must be < ``brownout_enter``).
        window_requests: size of the sliding latency window the
            brownout controller watches.
        min_window: served-request count required before the p99
            window is trusted to *enter* brownout.
        priority_names: display names per class index (class 0 first);
            purely cosmetic, used by metrics reports.
    """

    slo_ms: float | None = None
    queue_limit_ms: float | None = None
    deadline_shedding: bool = True
    priority_shedding: bool = True
    brownout: bool = False
    slo_margin: float = 0.85
    ewma_alpha: float = 0.3
    brownout_enter: float = 1.0
    brownout_exit: float = 0.6
    window_requests: int = 256
    min_window: int = 64
    priority_names: tuple[str, ...] = ()

    def __post_init__(self):
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")
        if self.queue_limit_ms is not None and self.queue_limit_ms <= 0:
            raise ValueError("queue_limit_ms must be > 0")
        if not 0 < self.slo_margin <= 1:
            raise ValueError("slo_margin must be in (0, 1]")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.brownout_exit >= self.brownout_enter:
            raise ValueError(
                "brownout_exit must be < brownout_enter (hysteresis)"
            )
        if self.window_requests < 1 or self.min_window < 1:
            raise ValueError("window sizes must be >= 1")
        if self.brownout and self.slo_ms is None:
            raise ValueError("brownout requires slo_ms")

    def admission_for(self, has_qos: bool) -> bool:
        """Whether admission can actually shed a batch of this kind.

        The multi-process front-end uses this to decide when it must
        serialize (drain in-flight work before admitting): only when a
        decision could depend on controller state.  A plain stream with
        no queue bound admits everything, so no serialization is needed.
        """
        if self.queue_limit_ms is not None:
            return True
        if not has_qos:
            return False
        return self.deadline_shedding or (
            self.priority_shedding and self.slo_ms is not None
        )


class OverloadController:
    """Mutable overload-control state: estimator, admission, brownout.

    One instance lives on the (spine) :class:`~repro.serving.server.
    LookupServer`; all state advances only through :meth:`admit`,
    :meth:`observe_batch`, :meth:`update_brownout`, and the chaos
    notifications — each driven by simulated-clock quantities — so a
    replayed stream folds to identical decisions in any runtime.
    """

    def __init__(self, control: OverloadControl, overhead_ms_per_batch: float):
        self.control = control
        self.overhead_ms = float(overhead_ms_per_batch)
        self.reset()

    def reset(self) -> None:
        """Return to stream-start state (mirrors server reset)."""
        self._ms_per_lookup: float | None = None
        self._window = np.empty(0, dtype=np.float64)
        self.brownout_active = False
        self._forced_brownout = False

    # ------------------------------------------------------------------
    # Service-time estimator
    # ------------------------------------------------------------------
    @property
    def ms_per_lookup(self) -> float | None:
        """Current EWMA estimate (None until the first batch executes)."""
        return self._ms_per_lookup

    def predict_service_ms(self, lookups: int) -> float:
        """Predicted service time of a batch with ``lookups`` lookups.

        Before the first observation only the per-batch overhead is
        charged — the controller admits optimistically until it has
        evidence (the first batch of a stream can never be "doomed by
        backlog" anyway: the engine is idle).
        """
        per = self._ms_per_lookup
        return self.overhead_ms + (0.0 if per is None else per * lookups)

    def observe_batch(
        self,
        service_ms: float,
        lookups: int,
        latencies_ms: np.ndarray,
    ) -> None:
        """Fold one executed batch into estimator + latency window."""
        if lookups > 0:
            observed = max(service_ms - self.overhead_ms, 0.0) / lookups
            alpha = self.control.ewma_alpha
            self._ms_per_lookup = (
                observed
                if self._ms_per_lookup is None
                else alpha * observed + (1 - alpha) * self._ms_per_lookup
            )
        if self.control.brownout:
            self._window = np.concatenate((self._window, latencies_ms))[
                -self.control.window_requests:
            ]

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        trigger_ms: float,
        busy_until_ms: float,
        arrivals_ms: np.ndarray,
        deadlines_ms: np.ndarray | None,
        priorities: np.ndarray | None,
        lookups: np.ndarray,
    ) -> tuple[np.ndarray, list[tuple[str, np.ndarray]]]:
        """Decide one released microbatch's fate.

        Returns ``(keep, sheds)``: a boolean keep mask over the batch's
        requests plus ``(cause, mask)`` pairs for every shed group (the
        masks partition the shed set, so ``keep | union(masks)`` covers
        the batch exactly — the conservation the metrics layer pins).

        Order of mechanisms: queue-bound overflow first (it emulates
        the blind tail-drop baseline and sheds the whole batch), then
        priority shedding against the SLO margin, then the deadline
        doom check on the survivors.
        """
        ctl = self.control
        n = int(arrivals_ms.size)
        keep = np.ones(n, dtype=bool)
        sheds: list[tuple[str, np.ndarray]] = []
        start = max(float(trigger_ms), float(busy_until_ms))
        if (
            ctl.queue_limit_ms is not None
            and start - float(trigger_ms) > ctl.queue_limit_ms
        ):
            sheds.append(("overflow", keep))
            return np.zeros(n, dtype=bool), sheds
        if (
            ctl.priority_shedding
            and ctl.slo_ms is not None
            and priorities is not None
        ):
            budget = ctl.slo_margin * ctl.slo_ms
            while keep.any():
                finish = start + self.predict_service_ms(
                    int(lookups[keep].sum())
                )
                worst = finish - float(arrivals_ms[keep].min())
                if worst <= budget:
                    break
                lowest = int(priorities[keep].max())
                if lowest <= 0:
                    break  # class 0 is never priority-shed
                drop = keep & (priorities == lowest)
                sheds.append(("priority", drop))
                keep = keep & ~drop
        if ctl.deadline_shedding and deadlines_ms is not None and keep.any():
            finish = start + self.predict_service_ms(
                int(lookups[keep].sum())
            )
            doomed = keep & (deadlines_ms < finish)
            if doomed.any():
                sheds.append(("deadline", doomed))
                keep = keep & ~doomed
        return keep, sheds

    # ------------------------------------------------------------------
    # Brownout hysteresis
    # ------------------------------------------------------------------
    def windowed_p99_ms(self) -> float | None:
        """p99 over the sliding latency window (None while empty)."""
        if not self._window.size:
            return None
        return float(np.percentile(self._window, 99))

    def update_brownout(self) -> bool:
        """Advance the hysteresis state machine; returns active flag.

        Enter when the windowed p99 reaches ``brownout_enter * slo``
        over a trusted window (or a ``device_degrade`` forces it);
        exit when the p99 falls to ``brownout_exit * slo`` and no
        degrade is outstanding.  The enter/exit gap prevents flapping
        at the threshold.
        """
        ctl = self.control
        if not ctl.brownout or ctl.slo_ms is None:
            return False
        p99 = self.windowed_p99_ms()
        if not self.brownout_active:
            triggered = (
                self._window.size >= ctl.min_window
                and p99 is not None
                and p99 >= ctl.brownout_enter * ctl.slo_ms
            )
            if self._forced_brownout or triggered:
                self.brownout_active = True
        else:
            recovered = (
                p99 is not None and p99 <= ctl.brownout_exit * ctl.slo_ms
            )
            if not self._forced_brownout and recovered:
                self.brownout_active = False
        return self.brownout_active

    def notify_degrade(self) -> None:
        """A ``device_degrade`` chaos event fired: force brownout."""
        if self.control.brownout:
            self._forced_brownout = True

    def notify_recover(self) -> None:
        """The degraded device recovered: release the forced flag.

        Brownout itself exits through the normal hysteresis path once
        the windowed p99 subsides — recovery lifts the floor, it does
        not snap service back while latencies are still hot.
        """
        self._forced_brownout = False
