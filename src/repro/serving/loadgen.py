"""Open-loop load generation for the serving runtimes.

The single-process simulator draws Poisson arrivals inline
(:func:`~repro.serving.server.synthetic_request_arenas`); the
multi-process runtime needs the arrival *process* as a first-class
object so the same request stream can be generated under different
traffic shapes — steady Poisson for scaling measurements, bursty
on/off cycles for overload and shedding tests.

Both processes here are frozen dataclasses whose arrival draws are pure
functions of ``(rng, now_ms, count)``: streams replay bit-for-bit per
seed, and :class:`PoissonArrivals` reproduces the inline generator's
gap sequence exactly (same ``rng.exponential`` call, same prepended
cumulative sum), so swapping a ``qps`` float for
``PoissonArrivals(qps)`` changes nothing downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol

import numpy as np

from repro.data.model import ModelSpec
from repro.data.synthetic import SamplerBank
from repro.serving.arena import RequestArena


class ArrivalProcess(Protocol):
    """A traffic shape: draws absolute arrival times for a chunk."""

    @property
    def mean_qps(self) -> float:
        """Long-run mean offered load (requests/second)."""
        ...

    def arrivals(
        self, rng: np.random.Generator, now_ms: float, count: int
    ) -> np.ndarray:
        """Draw ``count`` non-decreasing arrival times after ``now_ms``."""
        ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Steady open-loop traffic: exponential gaps at a fixed rate.

    Bit-reproduces the gap sequence of
    :func:`~repro.serving.server.synthetic_request_arenas` for the same
    generator state, so single- and multi-process runs of the same
    seeded stream see identical timestamps.

    Attributes:
        qps: mean arrival rate (requests/second, > 0).
    """

    qps: float

    def __post_init__(self):
        if self.qps <= 0:
            raise ValueError("qps must be > 0")

    @property
    def mean_qps(self) -> float:
        return self.qps

    def arrivals(
        self, rng: np.random.Generator, now_ms: float, count: int
    ) -> np.ndarray:
        gaps = rng.exponential(1e3 / self.qps, size=count)
        # Prepending ``now`` keeps float associativity identical to a
        # scalar ``now += gap`` loop (see synthetic_request_arenas).
        return np.cumsum(np.concatenate(([now_ms], gaps)))[1:]


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off traffic: Poisson bursts separated by (near-)idle windows.

    Time is tiled into ``burst_ms + idle_ms`` cycles anchored at
    ``t = 0``: inside the first ``burst_ms`` of each cycle requests
    arrive at ``burst_qps``, in the remainder at ``idle_qps`` (which
    may be 0 for true silence).  Exponential gaps are memoryless, so
    restarting the draw at each phase boundary yields an exact
    piecewise-constant-rate Poisson process; phase membership depends
    only on absolute simulated time, never on generator history.

    Attributes:
        burst_qps: arrival rate inside a burst (> 0).
        idle_qps: arrival rate between bursts (>= 0).
        burst_ms: burst window length (> 0).
        idle_ms: idle window length (> 0).
    """

    burst_qps: float
    idle_qps: float = 0.0
    burst_ms: float = 50.0
    idle_ms: float = 50.0

    def __post_init__(self):
        if self.burst_qps <= 0:
            raise ValueError("burst_qps must be > 0")
        if self.idle_qps < 0:
            raise ValueError("idle_qps must be >= 0")
        if self.burst_ms <= 0 or self.idle_ms <= 0:
            raise ValueError("burst_ms and idle_ms must be > 0")

    @property
    def period_ms(self) -> float:
        return self.burst_ms + self.idle_ms

    @property
    def mean_qps(self) -> float:
        return (
            self.burst_qps * self.burst_ms + self.idle_qps * self.idle_ms
        ) / self.period_ms

    def arrivals(
        self, rng: np.random.Generator, now_ms: float, count: int
    ) -> np.ndarray:
        out = np.empty(count, dtype=np.float64)
        filled = 0
        t = float(now_ms)
        while filled < count:
            phase = t % self.period_ms
            in_burst = phase < self.burst_ms
            rate = self.burst_qps if in_burst else self.idle_qps
            phase_end = t - phase + (
                self.burst_ms if in_burst else self.period_ms
            )
            if phase_end <= t:
                # Float rounding at a phase boundary can put phase_end
                # at (or below) t — ``t % period`` within one ulp of
                # the period — which would stall the loop; force
                # progress by at least one ulp.
                phase_end = np.nextafter(t, np.inf)
            if rate <= 0:
                t = phase_end
                continue
            need = count - filled
            gaps = rng.exponential(1e3 / rate, size=need)
            times = np.cumsum(np.concatenate(([t], gaps)))[1:]
            # Arrivals past the phase boundary are discarded and the
            # draw restarts at the boundary (exact by memorylessness).
            in_phase = int(np.searchsorted(times, phase_end, side="left"))
            if in_phase >= need:
                out[filled:] = times
                filled = count
                t = float(times[-1])
            else:
                out[filled : filled + in_phase] = times[:in_phase]
                filled += in_phase
                t = phase_end
        return out


#: Fixed stream id for the QoS column generator.  Deadlines and
#: priorities are drawn from ``default_rng((seed, _QOS_STREAM))`` — a
#: separate stream from the content/arrival generator — so turning the
#: QoS columns on leaves every existing arrival time and lookup index
#: of a seeded stream bit-identical.
_QOS_STREAM = 0x51D


def generate_request_arenas(
    model: ModelSpec,
    num_requests: int,
    process: ArrivalProcess,
    seed: int = 0,
    start_ms: float = 0.0,
    chunk_size: int = 512,
    deadline_ms: float | None = None,
    priority_shares: tuple[float, ...] | None = None,
) -> Iterator[RequestArena]:
    """Seeded open-loop arena stream under an arbitrary arrival process.

    The traffic-shape-generic twin of
    :func:`~repro.serving.server.synthetic_request_arenas`: sample
    content is drawn identically (same per-chunk child seeds from the
    same parent generator), only the timestamps come from ``process``.
    With ``PoissonArrivals(qps)`` the two functions yield bit-identical
    streams per seed — pinned by the loadgen tests and relied on by the
    mp-vs-single-process parity suite.

    Args:
        model: workload spec.
        num_requests: stream length.
        process: arrival process (Poisson, bursty, ...).
        seed: RNG seed; streams replay identically per seed.
        start_ms: timestamp of the stream's start.
        chunk_size: samples drawn per arena chunk (efficiency knob).
        deadline_ms: when set (> 0), every request carries the absolute
            deadline ``arrival + deadline_ms``.
        priority_shares: when set, per-request priority classes are
            drawn i.i.d. with these probabilities (class ``i`` gets
            ``priority_shares[i]``; shares must be positive and sum to
            1).  Drawn from a dedicated RNG stream, so arrivals and
            lookup content stay bit-identical with QoS on or off.

    Yields:
        :class:`~repro.serving.arena.RequestArena` chunks in arrival
        order.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ValueError("deadline_ms must be > 0")
    shares = None
    if priority_shares is not None:
        shares = np.asarray(priority_shares, dtype=np.float64)
        if shares.size == 0 or np.any(shares <= 0):
            raise ValueError("priority shares must be positive")
        if abs(float(shares.sum()) - 1.0) > 1e-6:
            raise ValueError(
                f"priority shares must sum to 1, got {float(shares.sum())}"
            )
        shares = shares / shares.sum()
    with_qos = deadline_ms is not None or shares is not None
    qos_rng = (
        np.random.default_rng((seed, _QOS_STREAM)) if with_qos else None
    )
    rng = np.random.default_rng(seed)
    bank = SamplerBank()
    bank.refresh(model)
    now = float(start_ms)
    emitted = 0
    while emitted < num_requests:
        count = min(chunk_size, num_requests - emitted)
        chunk_rng = np.random.default_rng(int(rng.integers(2**31)))
        batch = bank.sample_batch(count, chunk_rng)
        arrivals = process.arrivals(rng, now, count)
        now = float(arrivals[-1])
        deadlines = priorities = None
        if with_qos:
            deadlines = (
                arrivals + deadline_ms
                if deadline_ms is not None
                else np.full(count, np.inf)
            )
            priorities = (
                qos_rng.choice(shares.size, size=count, p=shares).astype(
                    np.int64
                )
                if shares is not None
                else np.zeros(count, dtype=np.int64)
            )
        yield RequestArena(
            batch,
            arrivals,
            base_id=emitted,
            deadline_ms=deadlines,
            priority=priorities,
        )
        emitted += count
