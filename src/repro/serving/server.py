"""Online lookup server: microbatched admission over the sharded engine.

A :class:`LookupServer` is a discrete-event simulation of an inference
deployment of one sharded embedding model: requests arrive on a
simulated clock, admission coalesces them into microbatches, and each
released microbatch executes on the vectorized
:class:`~repro.engine.executor.ShardedExecutor`, whose per-device times
come from the same tiered-bandwidth cost model the MILP optimizes.  The
engine is model-parallel across tables (as in training), so a batch
completes when its slowest device does, and a plan with balanced,
HBM-resident hot rows serves strictly higher QPS at lower tail latency
— the serving-side restatement of the paper's Table 3 result.

Two admission paths produce bit-identical metrics:

* **columnar fast path** (:meth:`LookupServer.serve_arenas`, default in
  the CLI): requests stay feature-major in
  :class:`~repro.serving.arena.RequestArena` chunks; release points
  (size cap / delay deadline) are computed vectorized over the
  arrival-time array, and each microbatch is an offset slice of the
  arena — no per-request objects, no per-batch re-concatenation.
* **object reference path** (:meth:`LookupServer.serve`): the original
  per-request loop through a
  :class:`~repro.serving.queue.MicroBatchQueue`.  Kept as the ground
  truth the serving parity tests check the fast path against.

Serving also closes the loop the paper opens in Section 3.5: feature
statistics drift, so a plan optimal at deployment decays.  The server
tracks observed per-feature statistics online (a streaming
:class:`~repro.stats.profiler.TraceProfiler`), compares them against
the profile the active plan was built from (:class:`DriftMonitor`), and
when drift exceeds a threshold re-shards from the *observed* profile
and hot-swaps the executor — the drift-triggered replan the paper
argues periodic re-sharding should provide.  The replacement plan is
built *off the critical path*: warm-started from the previous plan's
cut points when the sharder supports it, installed by pointer swap, and
its wall-clock build cost surfaced in
:class:`~repro.serving.metrics.ServingMetrics` rather than hidden.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.replicate import (
    ReplicatedPlan,
    ReplicationPolicy,
    build_replication,
    carve_replica_budget,
)
from repro.core.plan import ShardingPlan, TablePlacement
from repro.core.workspace import PlannerWorkspace
from repro.data.batch import JaggedBatch
from repro.data.drift import DriftModel
from repro.data.model import ModelSpec
from repro.data.synthetic import SamplerBank
from repro.engine.cache import CacheModel, TierStagingModel
from repro.engine.executor import ShardedExecutor
from repro.engine.ranked import RankRemapper
from repro.memory.topology import SystemTopology
from repro.serving.arena import RequestArena
from repro.serving.faults import FaultInjector, FaultSchedule
from repro.serving.loadgen import _QOS_STREAM
from repro.serving.metrics import ServingMetrics
from repro.serving.overload import OverloadControl, OverloadController
from repro.serving.queue import (
    LookupRequest,
    MicroBatchQueue,
    iter_microbatch_arenas,
)
from repro.stats.profiler import TraceProfiler


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of one serving deployment.

    Attributes:
        max_batch_size: microbatch release threshold in requests.
        max_delay_ms: longest a request may wait for batchmates.
        overhead_ms_per_batch: fixed per-batch cost (kernel launches,
            dense compute, host round-trip) that batching amortizes.
        drift_threshold_pct: mean per-feature pooling-factor drift (in
            percent, vs the plan's profile) that triggers a replan.
        drift_check_every_batches: how often the monitor is consulted.
        drift_min_samples: observations required before the monitor may
            trigger (guards against small-sample noise).
        profile_sample_rate: fraction of served samples folded into the
            online profile used for replanning (Section 4.1 finds <=1%
            suffices in production; the default profiles everything).
    """

    max_batch_size: int = 256
    max_delay_ms: float = 2.0
    overhead_ms_per_batch: float = 0.05
    drift_threshold_pct: float = 5.0
    drift_check_every_batches: int = 16
    drift_min_samples: int = 1024
    profile_sample_rate: float = 1.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.overhead_ms_per_batch < 0:
            raise ValueError("overhead_ms_per_batch must be >= 0")
        if self.drift_check_every_batches < 1:
            raise ValueError("drift_check_every_batches must be >= 1")


class DriftMonitor:
    """Online drift detector for per-feature pooling statistics.

    Accumulates, per feature, how many samples had the feature present
    and how many lookups they produced; the ratio is the observed
    average pooling factor, compared against the baseline profile the
    current plan was sharded from.  Mean absolute percent change across
    observable features is the drift signal (the quantity Figure 9
    tracks over production months).

    Args:
        profile: baseline :class:`~repro.stats.profiler.ModelProfile`.
        threshold_pct: drift level (percent) that makes
            :meth:`should_replan` true.
        min_samples: samples to observe before triggering.
    """

    #: present-sample floor below which a feature's estimate is noise.
    MIN_PRESENT = 16

    def __init__(self, profile, threshold_pct: float = 5.0, min_samples: int = 1024):
        self.threshold_pct = float(threshold_pct)
        self.min_samples = int(min_samples)
        self.reset(profile)

    def reset(self, profile) -> None:
        """Re-baseline against ``profile`` and clear observations."""
        self._baseline = np.array(
            [stats.avg_pooling for stats in profile], dtype=np.float64
        )
        num_tables = len(self._baseline)
        self._present = np.zeros(num_tables, dtype=np.int64)
        self._lookups = np.zeros(num_tables, dtype=np.int64)
        self._samples = 0

    @property
    def samples_observed(self) -> int:
        return self._samples

    def observe(self, batch: JaggedBatch) -> None:
        """Fold one served batch into the observed statistics.

        Vectorized across features: every feature of a jagged batch
        shares the same ``batch_size + 1`` offsets length, so presence
        and lookup tallies reduce to one stacked-offsets pass instead
        of a Python loop per feature.
        """
        if batch.num_features != self._present.size:
            raise ValueError(
                f"batch has {batch.num_features} features, monitor tracks "
                f"{self._present.size}"
            )
        self._samples += batch.batch_size
        if not batch.num_features:
            return
        offsets = np.stack([f.offsets for f in batch])
        self._present += np.count_nonzero(np.diff(offsets, axis=1), axis=1)
        self._lookups += offsets[:, -1]

    def drift_pct(self) -> float:
        """Mean |percent change| of pooling vs baseline, observable features."""
        eligible = (self._present >= self.MIN_PRESENT) & (self._baseline > 0)
        if not eligible.any():
            return 0.0
        observed = self._lookups[eligible] / self._present[eligible]
        baseline = self._baseline[eligible]
        return float(np.mean(np.abs(observed - baseline) / baseline) * 100.0)

    def should_replan(self) -> bool:
        """Whether enough drift has accumulated to justify re-sharding."""
        return (
            self._samples >= self.min_samples
            and self.drift_pct() >= self.threshold_pct
        )


class LookupServer:
    """Serves embedding lookup requests against a sharded plan.

    The server owns a simulated clock (milliseconds).  Requests are
    admitted through microbatching; each released batch runs on the
    vectorized executor, busy-waiting behind the previous batch if the
    engine is occupied (a single model-parallel replica).  Per-request
    latency is queueing wait plus execution time of its batch.

    Re-sharding: when built with a ``sharder`` (rather than a fixed
    ``plan``), the server profiles served traffic online and, when the
    :class:`DriftMonitor` trips, re-shards from the observed profile and
    swaps the executor in place.  The swap is free on the serving clock
    — production re-shards build the new placement off the critical
    path and flip atomically (Section 6.6's remapping tables make that
    a pointer swap) — but the *build* cost is measured in wall-clock
    and recorded in the metrics, and sharders exposing a ``warm_start``
    parameter (``RecShardFastSharder``) rebuild incrementally from the
    outgoing plan's cut points and device assignment.

    Args:
        model: the served model's spec.
        profile: profile the initial plan is built from.
        topology: simulated device/tier hierarchy.
        plan: a fixed sharding plan (mutually exclusive with sharder).
        sharder: strategy object with ``shard(model, profile, topology)``
            — enables drift-triggered replanning.  Works for any tier
            count (:class:`~repro.core.multitier.MultiTierSharder` for
            hierarchies beyond HBM+UVM).
        config: serving tunables.
        cache: optional device cache model passed to the executor.
        staging: optional :class:`~repro.engine.cache.TierStagingModel`
            — each cold tier's statically-hottest resident rows are
            served at the next-faster tier's bandwidth; the staging set
            is recomputed from the observed profile on every replan.
        replication: optional
            :class:`~repro.core.replicate.ReplicationPolicy` — a
            per-device byte budget carved out of the fastest tier and
            spent on replicas of the globally hottest rows, which the
            executor routes least-loaded across devices.  With a
            ``sharder`` the budget is carved *before* every (re)plan
            and the replica set recomputed from the refreshed
            workspace/profile; with a fixed ``plan`` the plan must
            leave the budget's worth of fastest-tier headroom.  A
            ``plan`` that already is a
            :class:`~repro.core.replicate.ReplicatedPlan` is served
            as-is.
        vectorized: executor mode; ``False`` serves on the per-lookup
            scalar reference engine (the multi-tier serving bench's
            baseline).
        chaos: optional :class:`~repro.serving.faults.FaultSchedule` of
            scripted device faults fired on the serving clock.  On a
            ``device_fail`` the server (1) masks the device out of the
            replica routing lane (replicated lookups reroute, home-lane
            lookups drop and are counted), (2) with a ``sharder``,
            builds an emergency warm-start replan onto the surviving
            devices and commits it once the build's (wall-clock) cost
            has elapsed on the simulated clock, and (3) records the
            recovery timeline in the metrics.  Worker events are
            rejected here — they need the multi-process runtime.
        emergency_commit_ms: override the emergency replan's commit
            delay with a fixed simulated value instead of the measured
            wall-clock build cost — what makes a chaos run
            deterministic for parity tests.
        overload: optional :class:`~repro.serving.overload.
            OverloadControl` enabling SLO-driven overload control:
            deadline-aware admission, priority-class shedding, and
            brownout degraded-mode serving.  Every released microbatch
            passes through :meth:`admit_arena` before execution, and a
            ``device_degrade`` chaos event forces brownout (when
            enabled) until the device recovers and latencies subside.
    """

    def __init__(
        self,
        model: ModelSpec,
        profile,
        topology: SystemTopology,
        plan=None,
        sharder=None,
        config: ServingConfig | None = None,
        cache: CacheModel | None = None,
        staging: TierStagingModel | None = None,
        replication: ReplicationPolicy | None = None,
        vectorized: bool = True,
        chaos: FaultSchedule | None = None,
        emergency_commit_ms: float | None = None,
        overload: OverloadControl | None = None,
    ):
        if (plan is None) == (sharder is None):
            raise ValueError("provide exactly one of plan= or sharder=")
        if isinstance(plan, ReplicatedPlan) and replication is not None:
            raise ValueError(
                "a ReplicatedPlan already carries its policy; do not "
                "also pass replication="
            )
        self.model = model
        self.topology = topology
        self.config = config or ServingConfig()
        self.cache = cache
        self.staging = staging
        self.replication = replication
        # Sharders plan against the carved topology so every (re)plan
        # leaves the replica budget free on the fastest tier.
        self._plan_topology = (
            carve_replica_budget(topology, replication)
            if replication is not None
            else topology
        )
        self.vectorized = bool(vectorized)
        self.sharder = sharder
        sharder_params = (
            inspect.signature(sharder.shard).parameters
            if sharder is not None
            else {}
        )
        self._sharder_warm_starts = "warm_start" in sharder_params
        # Vectorized sharders accept a planner workspace; the server
        # owns one and refreshes it in place per replan, so consecutive
        # replans never rebuild the stacked statistics buffers.
        self._sharder_takes_workspace = (
            "workspace" in sharder_params
            and getattr(sharder, "vectorized", False)
        )
        self._workspace: PlannerWorkspace | None = None
        self.queue = MicroBatchQueue(
            max_batch_size=self.config.max_batch_size,
            max_delay_ms=self.config.max_delay_ms,
        )
        self.overload = overload
        self._ovl = (
            OverloadController(overload, self.config.overhead_ms_per_batch)
            if overload is not None
            else None
        )
        self.metrics = ServingMetrics(
            num_devices=topology.num_devices,
            tier_names=topology.tier_names,
            priority_names=overload.priority_names if overload else None,
            tier_precisions=topology.tier_precisions,
        )
        self._busy_until_ms = 0.0
        self._batches_since_check = 0
        self._num_installs = 0
        # Chaos drills: scripted device faults replayed on the serving
        # clock, plus the deferred-commit slot for an emergency replan
        # built after a device failure.
        if chaos is not None:
            chaos.validate_targets(topology.num_devices, num_workers=0)
        self.chaos = chaos
        self._injector = FaultInjector(chaos) if chaos is not None else None
        self._chaos_armed = self._injector is not None
        self._emergency_commit_ms = emergency_commit_ms
        self._pending_install: tuple | None = None
        if plan is not None and self.replication is not None:
            # Fixed plan + policy: select the replica set once.  The
            # plan must leave the budget's worth of headroom (validated
            # when the executor installs it).
            plan = build_replication(
                self.replication, plan, profile, self.model, self.topology
            )
        self._install(
            plan if plan is not None else self._build_plan(profile), profile
        )
        # The construction-time install, kept so a post-drill reset can
        # restore the exact initial plan (and profiler seeding) and make
        # a second stream replay the no-fault baseline bit for bit.
        self._initial_install = (self.plan, self.profile)

    def _build_plan(self, profile, warm_start=None):
        """Shard from ``profile``, reusing the server's planner state.

        Warm start (previous plan's cut points and homes) and the
        in-place-refreshed :class:`PlannerWorkspace` are both handed to
        sharders that support them — together they are what keeps
        ``replan_build_ms`` a repair cost rather than a rebuild cost.
        With replication enabled the sharder plans against the carved
        topology and the replica set is recomputed from the same
        refreshed workspace, so drift replans rebalance the replica
        lane along with the placement.
        """
        kwargs = {}
        if self._sharder_takes_workspace:
            if self._workspace is None:
                self._workspace = PlannerWorkspace(
                    self.model, profile,
                    steps=getattr(self.sharder, "steps", 100),
                )
            else:
                self._workspace.refresh(profile)
            kwargs["workspace"] = self._workspace
        if warm_start is not None and self._sharder_warm_starts:
            if isinstance(warm_start, ReplicatedPlan):
                warm_start = warm_start.plan
            kwargs["warm_start"] = warm_start
        plan = self.sharder.shard(
            self.model, profile, self._plan_topology, **kwargs
        )
        if self.replication is not None:
            plan = build_replication(
                self.replication, plan, profile, self.model, self.topology,
                workspace=kwargs.get("workspace"),
            )
        return plan

    def _install(self, plan, profile) -> None:
        """Activate ``plan`` (initial install or drift replan swap)."""
        prior = getattr(self, "executor", None)
        self.plan = plan
        self.profile = profile
        ranker = RankRemapper(profile)
        self.executor = ShardedExecutor(
            self.model, plan, profile, self.topology,
            cache=self.cache, staging=self.staging,
            vectorized=self.vectorized, ranker=ranker,
        )
        if prior is not None:
            # Device fault state outlives a plan swap: an emergency
            # replan evacuates a dead device but does not resurrect it.
            self.executor._device_alive[:] = prior._device_alive
            self.executor._device_slowdown[:] = prior._device_slowdown
            # Brownout likewise: degraded mode is an overload-control
            # decision, not a property of any one plan.
            self.executor._brownout = prior._brownout
            self.executor.browned_by_table[:] = prior.browned_by_table
        # Drift tracking only exists where a replan is possible: a
        # fixed-plan server skips the per-batch profiling entirely.
        self.monitor = None
        self._profiler = None
        if self.sharder is not None:
            self.monitor = DriftMonitor(
                profile,
                threshold_pct=self.config.drift_threshold_pct,
                min_samples=self.config.drift_min_samples,
            )
            # Distinct sampling seed per install so consecutive observed
            # profiles draw independent Bernoulli sequences.
            self._profiler = TraceProfiler(
                self.model,
                sample_rate=self.config.profile_sample_rate,
                seed=self._num_installs,
            )
        self._num_installs += 1

    def reset_serving_state(self, rearm_chaos: bool = False) -> None:
        """Start an independent run on the same installed plan.

        Fresh metrics, admission queue, simulated clock, and replica
        routing history — everything a *stream* accumulates, nothing a
        *plan* owns.  Lets one server (or one multi-process pool, which
        delegates here) serve several streams back to back with
        per-stream metrics, e.g. repeated benchmark rounds.

        After a failure drill (or any replan) the *initial* plan is
        reinstalled with the install counter rewound, so profiler
        seeding, routing counters, replica sets, and metrics all replay
        — the next stream reproduces a fresh server's no-fault baseline
        bit for bit.  The chaos script is disarmed by default (a drill
        is one-shot per arming); pass ``rearm_chaos=True`` to rewind it
        and run the drill again instead.
        """
        self.queue = MicroBatchQueue(
            max_batch_size=self.config.max_batch_size,
            max_delay_ms=self.config.max_delay_ms,
        )
        self.metrics = ServingMetrics(
            num_devices=self.topology.num_devices,
            tier_names=self.topology.tier_names,
            priority_names=(
                self.overload.priority_names if self.overload else None
            ),
            tier_precisions=self.topology.tier_precisions,
        )
        self._busy_until_ms = 0.0
        self._batches_since_check = 0
        self._pending_install = None
        if self._injector is not None:
            self._injector.reset()
            self._chaos_armed = rearm_chaos
        if self._ovl is not None:
            self._ovl.reset()
        if self._num_installs > 1:
            self._num_installs = 0
            self._install(*self._initial_install)
        self.executor.clear_faults()
        self.executor.reset_routing()
        self.executor.reset_brownout()

    # ------------------------------------------------------------------
    # Reference event loop (per-request object path)
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Iterable[LookupRequest],
        on_replan: Callable[[float], None] | None = None,
    ) -> ServingMetrics:
        """Run the object-path event loop over a request stream.

        Args:
            requests: requests in non-decreasing ``arrival_ms`` order
                (e.g. from :func:`synthetic_request_stream`).
            on_replan: optional callback invoked with the simulated time
                of every drift-triggered replan.

        Returns:
            The accumulated :class:`~repro.serving.metrics.ServingMetrics`.
        """
        for request in requests:
            now = request.arrival_ms
            # Flush any batch whose delay budget expires before this arrival.
            while len(self.queue) and self.queue.deadline_ms() <= now:
                self._process(self.queue.deadline_ms(), on_replan)
            self.queue.submit(request)
            if self.queue.ready(now):
                self._process(now, on_replan)
        # Stream over, clock keeps running: leftover requests wait out
        # their delay budget in case of batchmates, then release.
        while len(self.queue):
            self._process(self.queue.deadline_ms(), on_replan)
        return self.metrics

    def _process(
        self, trigger_ms: float, on_replan: Callable[[float], None] | None = None
    ) -> None:
        """Release one microbatch from the queue and account it."""
        arena = RequestArena.from_requests(self.queue.pop_batch())
        if self._ovl is not None:
            arena = self.admit_arena(arena, trigger_ms)
            if arena is None:
                return
        self._execute(
            arena.batch, trigger_ms, arena.arrival_ms, on_replan,
            deadlines_ms=arena.deadline_ms, priorities=arena.priority,
        )

    # ------------------------------------------------------------------
    # Columnar fast path (vectorized admission over request arenas)
    # ------------------------------------------------------------------
    def serve_arenas(
        self,
        arenas: Iterable[RequestArena],
        on_replan: Callable[[float], None] | None = None,
    ) -> ServingMetrics:
        """Run the event loop columnar over arena chunks.

        Batch formation is the shared
        :func:`~repro.serving.queue.iter_microbatch_arenas` admission
        pass (release points computed vectorized on the arrival arrays;
        each released batch an offset slice of the arena), also used by
        the multi-process front-end — so the two runtimes release
        identical microbatches.  Produces metrics bit-identical to
        :meth:`serve` on the same request content (the parity the
        serving tests pin down).

        Args:
            arenas: columnar request chunks in arrival order (e.g. from
                :func:`synthetic_request_arenas`).
            on_replan: optional callback, as in :meth:`serve`.
        """
        for arena, trigger in iter_microbatch_arenas(
            arenas, self.config.max_batch_size, self.config.max_delay_ms
        ):
            if self._ovl is not None:
                arena = self.admit_arena(arena, trigger)
                if arena is None:
                    continue
            self._execute(
                arena.batch, trigger, arena.arrival_ms, on_replan,
                deadlines_ms=arena.deadline_ms, priorities=arena.priority,
            )
        return self.metrics

    def admit_arena(
        self, arena: RequestArena, trigger_ms: float
    ) -> RequestArena | None:
        """Run one released microbatch through overload admission.

        Applies the controller's shed decisions (overflow, then
        priority, then deadline doom — see
        :meth:`~repro.serving.overload.OverloadController.admit`),
        records each shed slice by cause and priority class, and
        returns the surviving sub-arena (``None`` when the whole batch
        was shed; the arena unchanged when admission does not apply).
        """
        ctrl = self._ovl
        if ctrl is None or not ctrl.control.admission_for(arena.has_qos):
            return arena
        keep, sheds = ctrl.admit(
            trigger_ms,
            self._busy_until_ms,
            arena.arrival_ms,
            arena.deadline_ms,
            arena.priority,
            arena.request_lookups,
        )
        for cause, mask in sheds:
            self.metrics.record_shed(
                int(mask.sum()),
                cause=cause,
                priorities=(
                    arena.priority[mask]
                    if arena.priority is not None
                    else None
                ),
            )
        if keep.all():
            return arena
        if not keep.any():
            return None
        return arena.take(keep)

    # ------------------------------------------------------------------
    # Shared batch execution and replanning
    # ------------------------------------------------------------------
    def _execute(
        self,
        batch: JaggedBatch,
        trigger_ms: float,
        arrivals_ms,
        on_replan: Callable[[float], None] | None,
        deadlines_ms=None,
        priorities=None,
    ) -> None:
        """Execute one released microbatch and account it."""
        start = max(trigger_ms, self._busy_until_ms)
        if self._chaos_armed:
            self._apply_due_faults(trigger_ms, start)
            if self._pending_install is not None:
                self._maybe_commit_emergency(start)
        ctrl = self._ovl
        brownout_now = False
        if ctrl is not None and ctrl.control.brownout:
            active = ctrl.update_brownout()
            if active != self.executor.brownout_active:
                self.executor.set_brownout(active)
                self.metrics.record_brownout(start, active)
            brownout_now = active
        device_times, accesses, _, replicas = self.executor.run_batch(batch)
        service = float(device_times.max()) + self.config.overhead_ms_per_batch
        finish = start + service
        self._busy_until_ms = finish
        faults_active = self._chaos_armed and self.executor.has_faults
        self.metrics.record_batch(
            arrivals_ms,
            start_ms=start,
            finish_ms=finish,
            device_times_ms=device_times,
            # Every lookup lands in exactly one (tier, device) cell, so
            # the access matrix already totals the batch's lookups.
            total_lookups=int(accesses.sum()),
            tier_accesses=accesses,
            replica_accesses=(
                replicas if self.executor.replication is not None else None
            ),
            dropped_lookups=(
                self.executor.last_dropped.copy() if faults_active else None
            ),
            deadlines_ms=deadlines_ms,
            priorities=priorities,
            browned_lookups=(
                self.executor.last_browned.copy() if brownout_now else None
            ),
        )
        if ctrl is not None:
            ctrl.observe_batch(
                service,
                batch.total_lookups,
                finish - np.asarray(arrivals_ms, dtype=np.float64),
            )
        if self.sharder is None:
            return
        # Two deliberate accumulators: the monitor watches *all* served
        # traffic (cheap per-feature tallies, accurate drift signal);
        # the profiler Bernoulli-subsamples at profile_sample_rate to
        # bound the cost of the full per-row counts a replan needs.
        self.monitor.observe(batch)
        self._profiler.consume(batch)
        self._batches_since_check += 1
        if self._batches_since_check >= self.config.drift_check_every_batches:
            self._batches_since_check = 0
            if self.monitor.should_replan():
                self._replan(finish, on_replan)

    def _replan(
        self, now_ms: float, on_replan: Callable[[float], None] | None = None
    ) -> None:
        """Re-shard from the observed profile and hot-swap the executor.

        The build happens off the simulated critical path (the clock
        does not advance), warm-started from the outgoing plan when the
        sharder supports it; the wall-clock build cost is recorded so
        re-shard overhead stays observable.
        """
        build_start = time.perf_counter()
        observed = self._profiler.finish()
        plan = self._build_plan(observed, warm_start=self.plan)
        self._install(plan, observed)
        build_ms = (time.perf_counter() - build_start) * 1e3
        self.metrics.record_replan(now_ms, build_wall_ms=build_ms)
        if on_replan is not None:
            on_replan(now_ms)

    # ------------------------------------------------------------------
    # Fault injection and emergency recovery (chaos drills)
    # ------------------------------------------------------------------
    def _apply_due_faults(self, now_ms: float, start_ms: float) -> None:
        """Deliver every scheduled fault due by ``now_ms``.

        ``start_ms`` is when the triggering batch actually executes —
        the first moment rerouting is in effect, so it closes the
        ``time_to_reroute`` interval.
        """
        for event in self._injector.pop_due(now_ms):
            self.metrics.record_fault(
                event.at_ms, event.kind, event.target, event.describe()
            )
            if event.kind == "device_fail":
                self.executor.fail_device(event.target)
                self.metrics.open_fault_window(event.at_ms)
                self.metrics.record_recovery(
                    "reroute", event.at_ms, start_ms
                )
                self._start_emergency_replan(event.at_ms)
            elif event.kind == "device_degrade":
                self.executor.degrade_device(event.target, event.slowdown)
                if self._ovl is not None:
                    # A degraded device is a known latency cliff: force
                    # brownout rather than waiting for the windowed p99
                    # to discover it.
                    self._ovl.notify_degrade()
            elif event.kind == "device_recover":
                self.executor.recover_device(event.target)
                if self._ovl is not None:
                    self._ovl.notify_recover()
                if not self.executor.dead_devices:
                    # Full topology restored: the evacuation plan under
                    # construction is moot, and degraded service ends.
                    self._pending_install = None
                    self._close_open_windows(event.at_ms)

    def _start_emergency_replan(self, fault_ms: float) -> None:
        """Build a warm-start plan onto the surviving devices.

        The build runs synchronously here (off the simulated critical
        path, like drift replans) but *commits* only once its cost has
        elapsed on the serving clock — the window in which serving runs
        degraded on the replica lane alone.  Fixed-plan servers have no
        sharder to rebuild with, so they stay in degraded mode until a
        recover event.
        """
        if self.sharder is None:
            return
        build_start = time.perf_counter()
        plan = self._build_emergency_plan()
        build_ms = (time.perf_counter() - build_start) * 1e3
        delay = (
            self._emergency_commit_ms
            if self._emergency_commit_ms is not None
            else build_ms
        )
        self._pending_install = (
            plan, self.profile, fault_ms + delay, fault_ms, build_ms
        )

    def _build_emergency_plan(self):
        """Re-shard the current profile onto the surviving devices.

        The sharder plans in a compacted index space (a reduced
        topology holding only survivors, with the replica budget still
        carved out of its fastest tier); the outgoing plan is
        translated into that space as a warm start, with dead-homed
        tables hinted round-robin across survivors; the result is
        mapped back to physical device ids and the replica set
        recomputed so the executor keeps serving in physical space.
        """
        alive = self.executor._device_alive
        surviving = [int(d) for d in np.flatnonzero(alive)]
        if not surviving:
            raise RuntimeError("no surviving devices to replan onto")
        reduced = SystemTopology(
            num_devices=len(surviving), tiers=self._plan_topology.tiers
        )
        compact = {device: i for i, device in enumerate(surviving)}
        base = self.plan.plan if isinstance(self.plan, ReplicatedPlan) else self.plan
        placements = []
        evacuated = 0
        for p in base:
            if p.device in compact:
                device = compact[p.device]
            else:
                device = evacuated % len(surviving)
                evacuated += 1
            placements.append(
                TablePlacement(p.table_index, device, p.rows_per_tier)
            )
        warm = ShardingPlan(
            strategy=base.strategy, placements=placements,
            metadata=dict(base.metadata),
        )
        kwargs = {}
        if self._sharder_takes_workspace:
            if self._workspace is None:
                self._workspace = PlannerWorkspace(
                    self.model, self.profile,
                    steps=getattr(self.sharder, "steps", 100),
                )
            else:
                self._workspace.refresh(self.profile)
            kwargs["workspace"] = self._workspace
        if self._sharder_warm_starts:
            kwargs["warm_start"] = warm
        plan = self.sharder.shard(
            self.model, self.profile, reduced, **kwargs
        )
        plan = ShardingPlan(
            strategy=plan.strategy,
            placements=[
                TablePlacement(
                    p.table_index, surviving[p.device], p.rows_per_tier
                )
                for p in plan
            ],
            metadata=dict(plan.metadata),
        )
        if self.replication is not None:
            plan = build_replication(
                self.replication, plan, self.profile, self.model,
                self.topology, workspace=kwargs.get("workspace"),
            )
        return plan

    def _maybe_commit_emergency(self, start_ms: float) -> None:
        """Swap in the pending emergency plan once its build time has
        elapsed on the serving clock."""
        plan, profile, commit_at, fault_ms, build_ms = self._pending_install
        if start_ms < commit_at:
            return
        self._install(plan, profile)
        self._pending_install = None
        self.metrics.record_replan(commit_at, build_wall_ms=build_ms)
        self.metrics.record_recovery(
            "replan", fault_ms, commit_at, wall_ms=build_ms
        )
        self._close_open_windows(commit_at)

    def _close_open_windows(self, now_ms: float) -> None:
        while any(w[1] is None for w in self.metrics.fault_windows):
            self.metrics.close_fault_window(now_ms)


def synthetic_request_arenas(
    model: ModelSpec,
    num_requests: int,
    qps: float,
    seed: int = 0,
    start_ms: float = 0.0,
    drift: DriftModel | None = None,
    months_per_request: float = 0.0,
    chunk_size: int = 512,
    deadline_ms: float | None = None,
    priority_shares: tuple[float, ...] | None = None,
) -> Iterator[RequestArena]:
    """Generate a seeded open-loop request stream, columnar.

    Chunks of samples are drawn feature-major from the model's feature
    statistics and assigned Poisson arrivals at the offered ``qps``;
    each chunk is one :class:`~repro.serving.arena.RequestArena`.  With
    a ``drift`` model, each successive chunk is drawn from feature
    statistics drifted to ``months_per_request * requests_so_far`` —
    fast-forwarding the months-long drift of Figure 9 into one serving
    run so drift-triggered replanning can be exercised end to end.
    Per-feature sampler state (hashed value space, post-hash CDFs) is
    reused across chunks and only rebuilt for the spec fields drift
    actually changed.

    The per-request view of the same stream is
    :func:`synthetic_request_stream`; both yield identical content per
    seed.

    Args:
        model: workload spec.
        num_requests: stream length.
        qps: offered load (mean arrival rate, requests/second).
        seed: RNG seed; streams replay identically per seed.
        start_ms: timestamp of the stream's start.
        drift: optional :class:`~repro.data.drift.DriftModel`.
        months_per_request: simulated months elapsed per request.
        chunk_size: samples drawn per arena chunk (efficiency knob).
        deadline_ms: when set (> 0), every request carries the absolute
            deadline ``arrival + deadline_ms``.
        priority_shares: when set, per-request priority classes are
            drawn i.i.d. with these probabilities (shares must be
            positive and sum to 1).  Like the loadgen twin, QoS columns
            come from a dedicated RNG stream
            (``default_rng((seed, 0x51D))``), so arrivals and lookup
            content stay bit-identical with QoS on or off — and, with
            drift, identical to the undrifted stream's QoS columns.

    Yields:
        :class:`~repro.serving.arena.RequestArena` chunks in arrival
        order.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if qps <= 0:
        raise ValueError("qps must be > 0")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ValueError("deadline_ms must be > 0")
    shares = None
    if priority_shares is not None:
        shares = np.asarray(priority_shares, dtype=np.float64)
        if shares.size == 0 or np.any(shares <= 0):
            raise ValueError("priority shares must be positive")
        if abs(float(shares.sum()) - 1.0) > 1e-6:
            raise ValueError(
                f"priority shares must sum to 1, got {float(shares.sum())}"
            )
        shares = shares / shares.sum()
    with_qos = deadline_ms is not None or shares is not None
    qos_rng = (
        np.random.default_rng((seed, _QOS_STREAM)) if with_qos else None
    )
    rng = np.random.default_rng(seed)
    bank = SamplerBank()
    now = float(start_ms)
    emitted = 0
    while emitted < num_requests:
        count = min(chunk_size, num_requests - emitted)
        chunk_model = model
        if drift is not None and months_per_request > 0:
            month = months_per_request * emitted
            if month > 0:
                chunk_model = drift.drift_model(model, month)
        bank.refresh(chunk_model)
        chunk_rng = np.random.default_rng(int(rng.integers(2**31)))
        batch = bank.sample_batch(count, chunk_rng)
        gaps = rng.exponential(1e3 / qps, size=count)
        # Prepending ``now`` keeps the cumulative sum's float
        # associativity identical to the scalar ``now += gap`` loop the
        # object path historically ran, so streams replay bit-for-bit.
        arrivals = np.cumsum(np.concatenate(([now], gaps)))[1:]
        now = float(arrivals[-1])
        deadlines = priorities = None
        if with_qos:
            deadlines = (
                arrivals + deadline_ms
                if deadline_ms is not None
                else np.full(count, np.inf)
            )
            priorities = (
                qos_rng.choice(shares.size, size=count, p=shares).astype(
                    np.int64
                )
                if shares is not None
                else np.zeros(count, dtype=np.int64)
            )
        yield RequestArena(
            batch,
            arrivals,
            base_id=emitted,
            deadline_ms=deadlines,
            priority=priorities,
        )
        emitted += count


def synthetic_request_stream(
    model: ModelSpec,
    num_requests: int,
    qps: float,
    seed: int = 0,
    start_ms: float = 0.0,
    drift: DriftModel | None = None,
    months_per_request: float = 0.0,
    chunk_size: int = 512,
    deadline_ms: float | None = None,
    priority_shares: tuple[float, ...] | None = None,
) -> Iterator[LookupRequest]:
    """Per-request object view of :func:`synthetic_request_arenas`.

    Yields :class:`~repro.serving.queue.LookupRequest` objects whose
    feature arrays are zero-copy views into arena chunks — the object
    API the reference serving path and external callers consume,
    identical in content to the columnar stream for a given seed.
    """
    for arena in synthetic_request_arenas(
        model,
        num_requests,
        qps,
        seed=seed,
        start_ms=start_ms,
        drift=drift,
        months_per_request=months_per_request,
        chunk_size=chunk_size,
        deadline_ms=deadline_ms,
        priority_shares=priority_shares,
    ):
        yield from arena
