"""Microbatching admission queue for online embedding lookups.

Inference requests arrive one sample at a time, but the sharded engine
(and the real FBGEMM kernels it stands in for) only reaches hardware
efficiency on batched lookups.  The standard serving remedy — used by
TorchRec inference, Triton dynamic batching, and every production
recommender — is a microbatching queue: hold arriving requests briefly
and release them as one batch when either the batch-size cap is hit or
the oldest request has waited its latency budget.

The queue is deterministic and clock-driven (callers pass ``now_ms``),
so serving simulations replay exactly; nothing here depends on wall
time or threads.

This module is the serving layer's *object reference path*: the
columnar fast path (:mod:`repro.serving.arena`,
:meth:`~repro.serving.server.LookupServer.serve_arenas`) computes the
same release decisions vectorized over arrival arrays and is checked
bit-for-bit against this implementation by the serving parity tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature


@dataclass(frozen=True)
class LookupRequest:
    """One inference sample's embedding lookups, across all features.

    Attributes:
        request_id: caller-chosen identifier (unique per stream).
        features: per-feature arrays of hashed embedding indices; an
            empty array marks a NULL sample for that feature (a missing
            sparse feature, as in the paper's Figure 3).
        arrival_ms: simulated arrival timestamp in milliseconds.
        deadline_ms: absolute deadline for a useful answer (``inf`` =
            no deadline); overload control sheds work predicted to
            finish past it.
        priority: small-int priority class; lower is more important
            and class 0 is never priority-shed.
    """

    request_id: int
    features: tuple[np.ndarray, ...]
    arrival_ms: float = 0.0
    deadline_ms: float = float("inf")
    priority: int = 0

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def total_lookups(self) -> int:
        return int(sum(f.size for f in self.features))


def coalesce_requests(requests: list[LookupRequest]) -> JaggedBatch:
    """Merge requests into one jagged batch (sample i = request i).

    The inverse of per-sample slicing: request ``i`` becomes sample
    ``i`` of every feature, preserving submission order so per-request
    results can be scattered back after execution.
    """
    if not requests:
        raise ValueError("cannot coalesce an empty request list")
    num_features = requests[0].num_features
    for r in requests:
        if r.num_features != num_features:
            raise ValueError(
                f"request {r.request_id} has {r.num_features} features, "
                f"expected {num_features}"
            )
    features = []
    for j in range(num_features):
        per_sample = [r.features[j] for r in requests]
        lengths = np.array([s.size for s in per_sample], dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if offsets[-1]:
            values = np.concatenate(
                [np.asarray(s, dtype=np.int64) for s in per_sample]
            )
        else:
            values = np.empty(0, dtype=np.int64)
        features.append(JaggedFeature(values, offsets))
    return JaggedBatch(features)


def iter_microbatch_arenas(arenas, max_batch_size: int, max_delay_ms: float):
    """Vectorized admission over arena chunks: yield released microbatches.

    The batch-formation core of the columnar serving fast path, shared
    by the in-process :meth:`~repro.serving.server.LookupServer.serve_arenas`
    loop and the multi-process front-end
    (:class:`~repro.serving.mp.MultiProcessServer`), so both runtimes
    release *identical* microbatches for a given stream — the structural
    basis of their metrics parity.

    Admission decisions depend only on arrival times, the size cap, and
    the delay budget — never on execution — so release points are
    computed directly on each chunk's arrival array: a batch starting at
    request ``i`` either fills to the cap (released at the cap-th
    arrival) or is flushed at ``arrival[i] + max_delay_ms`` by the first
    later arrival past that deadline.  An undecided tail is carried as a
    list of zero-copy slices (total size below the cap, every arrival
    before the head's deadline) and only stitched when its batch
    releases.  Release semantics match :class:`MicroBatchQueue` bit for
    bit (``deadline <= now`` flushes before the newcomer is submitted).

    Args:
        arenas: :class:`~repro.serving.arena.RequestArena` chunks in
            arrival order.
        max_batch_size: microbatch release threshold in requests.
        max_delay_ms: longest a request may wait for batchmates.

    Yields:
        ``(arena, trigger_ms)`` pairs — one zero-copy (or
        tail-stitched) :class:`~repro.serving.arena.RequestArena` per
        released microbatch, with the simulated release time.
    """
    from repro.serving.arena import RequestArena

    cap = int(max_batch_size)
    delay = float(max_delay_ms)
    pending: list = []
    pending_count = 0
    for arena in arenas:
        n = arena.num_requests
        if n == 0:
            continue
        i = 0
        if pending_count:
            deadline = float(pending[0].arrival_ms[0]) + delay
            flush = int(
                np.searchsorted(arena.arrival_ms, deadline, side="left")
            )
            need = cap - pending_count
            if need <= n and need <= flush:
                i, trigger = need, float(arena.arrival_ms[need - 1])
            elif flush < n:
                i, trigger = flush, deadline
            else:
                pending.append(arena)
                pending_count += n
                continue
            parts = pending + ([arena.slice(0, i)] if i else [])
            yield RequestArena.concat(parts), trigger
            pending, pending_count = [], 0
        arrivals = arena.arrival_ms
        while i < n:
            deadline = float(arrivals[i]) + delay
            # First later arrival at/past the deadline forces a flush
            # *before* that request is admitted (queue semantics:
            # deadline <= now flushes, then the newcomer is submitted).
            flush = int(np.searchsorted(arrivals, deadline, side="left"))
            if flush <= i:
                flush = i + 1
            if i + cap <= n and i + cap <= flush:
                # Cap fills first: released at the cap-th arrival.
                end, trigger = i + cap, float(arrivals[i + cap - 1])
            elif flush < n:
                end, trigger = flush, deadline
            else:
                pending, pending_count = [arena.slice(i, n)], n - i
                break
            yield arena.slice(i, end), trigger
            i = end
    if pending_count:
        # Stream over: the tail waits out its delay budget (all of it
        # arrived before the head's deadline, so it releases as one
        # batch — mirroring the reference drain loop).
        merged = RequestArena.concat(pending)
        yield merged, float(merged.arrival_ms[0]) + delay


@dataclass
class MicroBatchQueue:
    """Admission queue releasing microbatches by size or delay bound.

    A batch is *ready* when ``max_batch_size`` requests are waiting, or
    when the oldest waiting request has been queued for at least
    ``max_delay_ms`` (its latency budget for batching).  Larger batches
    amortize per-batch overhead and raise throughput; the delay bound
    caps the queueing latency a lightly-loaded server adds.

    Attributes:
        max_batch_size: release threshold in requests (>= 1).
        max_delay_ms: longest time a request may wait for batchmates.
    """

    max_batch_size: int = 256
    max_delay_ms: float = 1.0
    _pending: deque = field(default_factory=deque, repr=False)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, request: LookupRequest) -> None:
        """Enqueue one request (arrivals must be non-decreasing in time)."""
        if self._pending and request.arrival_ms < self._pending[-1].arrival_ms:
            raise ValueError(
                f"request {request.request_id} arrives at {request.arrival_ms}"
                f" ms, before the queue tail"
            )
        self._pending.append(request)

    def deadline_ms(self) -> float:
        """When the current head request forces a release (inf if empty)."""
        if not self._pending:
            return float("inf")
        return self._pending[0].arrival_ms + self.max_delay_ms

    def ready(self, now_ms: float) -> bool:
        """Whether a batch should be released at ``now_ms``."""
        if not self._pending:
            return False
        return (
            len(self._pending) >= self.max_batch_size
            or now_ms >= self.deadline_ms()
        )

    def pop_batch(self) -> list[LookupRequest]:
        """Release up to ``max_batch_size`` oldest requests (FIFO).

        Callers should check :meth:`ready` first; popping early is
        allowed (e.g. to flush at shutdown) but wastes batching headroom.
        """
        if not self._pending:
            raise ValueError("pop_batch on an empty queue")
        count = min(len(self._pending), self.max_batch_size)
        return [self._pending.popleft() for _ in range(count)]
