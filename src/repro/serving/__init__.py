"""Online serving layer over the sharded execution engine.

Training replay (:mod:`repro.engine`) answers "how fast does a plan run
a fixed trace"; this package answers the inference-side question: how
many *requests per second* can a sharded embedding deployment sustain,
and at what tail latency.  It mirrors the structure of production
recommendation inference stacks (e.g. TorchRec's inference path): a
microbatching admission queue in front of a model-parallel lookup
engine, with per-device metrics and statistics-drift monitoring that
can trigger a re-shard while serving.

Components:

* :class:`~repro.serving.arena.RequestArena` — feature-major columnar
  request chunks; microbatches are offset slices, and
  :class:`~repro.serving.queue.LookupRequest` objects are zero-copy
  views for the object API.
* :class:`~repro.serving.queue.MicroBatchQueue` — reference admission
  queue that coalesces single-sample lookup requests into jagged
  batches, bounded by batch size and queueing delay.
* :class:`~repro.serving.server.LookupServer` — discrete-event server
  driving the vectorized :class:`~repro.engine.executor.ShardedExecutor`
  on a simulated clock; supports drift-triggered replanning.  Its
  :meth:`~repro.serving.server.LookupServer.serve_arenas` fast path
  computes admission vectorized over arrival arrays and produces
  metrics bit-identical to the per-request
  :meth:`~repro.serving.server.LookupServer.serve` loop.
* :class:`~repro.serving.metrics.ServingMetrics` — columnar per-batch
  latency records with QPS, p50/p99, per-device utilization, and
  off-critical-path replan build cost views.
* :class:`~repro.serving.server.DriftMonitor` — online per-feature
  pooling statistics compared against the profile the current plan was
  built from (Section 3.5's drift, detected rather than assumed).
* :class:`~repro.serving.mp.MultiProcessServer` — the wall-clock
  runtime: a pool of worker processes classifying microbatches handed
  over zero-copy in shared memory
  (:meth:`~repro.serving.arena.RequestArena.to_shm`), with a
  sequential front-end aggregator whose merged metrics are
  bit-identical to a single-process ``serve_arenas`` run.
* :mod:`~repro.serving.faults` — scripted device/worker chaos
  (:class:`~repro.serving.faults.FaultSchedule`,
  :func:`~repro.serving.faults.parse_chaos_spec`) replayed on the
  serving clock; drives the degraded-mode failover, emergency replan,
  and self-healing worker-pool drills.
* :mod:`~repro.serving.loadgen` — first-class arrival processes
  (:class:`~repro.serving.loadgen.PoissonArrivals`,
  :class:`~repro.serving.loadgen.BurstyArrivals`) for open-loop load
  generation under arbitrary traffic shapes, with optional per-request
  deadline budgets and priority classes.
* :mod:`~repro.serving.overload` — SLO-driven overload control
  (:class:`~repro.serving.overload.OverloadControl`): deadline-aware
  admission from an EWMA service-time estimator, priority-class
  shedding, and brownout degraded-mode serving that skips cold-tier
  home lanes while the windowed p99 violates the SLO.

Quickstart::

    from repro import rm2, paper_node, analytic_profile
    from repro.core import RecShardFastSharder
    from repro.serving import LookupServer, ServingConfig, synthetic_request_stream

    model = rm2(num_features=97, row_scale=1e-3 * 97 / 397)
    topology = paper_node(num_gpus=8, scale=1e-3 * 97 / 397)
    profile = analytic_profile(model)
    server = LookupServer(
        model, profile, topology,
        sharder=RecShardFastSharder(batch_size=256),
        config=ServingConfig(max_batch_size=256, max_delay_ms=2.0),
    )
    arenas = synthetic_request_arenas(model, num_requests=2000, qps=20000, seed=7)
    metrics = server.serve_arenas(arenas)   # columnar fast path
    print(metrics.format_report())
"""

from repro.serving.arena import RequestArena, ShmArena, ShmArenaHandle
from repro.serving.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    device_degrade,
    device_fail,
    device_recover,
    parse_chaos_spec,
    worker_kill,
)
from repro.serving.loadgen import (
    BurstyArrivals,
    PoissonArrivals,
    generate_request_arenas,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.mp import MultiProcessServer, WorkerCrashError
from repro.serving.overload import (
    SHED_CAUSES,
    OverloadControl,
    OverloadController,
    parse_priority_spec,
)
from repro.serving.queue import (
    LookupRequest,
    MicroBatchQueue,
    coalesce_requests,
    iter_microbatch_arenas,
)
from repro.serving.server import (
    DriftMonitor,
    LookupServer,
    ServingConfig,
    synthetic_request_arenas,
    synthetic_request_stream,
)

__all__ = [
    "BurstyArrivals",
    "DriftMonitor",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LookupRequest",
    "LookupServer",
    "MicroBatchQueue",
    "MultiProcessServer",
    "OverloadControl",
    "OverloadController",
    "PoissonArrivals",
    "RequestArena",
    "SHED_CAUSES",
    "ServingConfig",
    "ServingMetrics",
    "ShmArena",
    "ShmArenaHandle",
    "WorkerCrashError",
    "coalesce_requests",
    "device_degrade",
    "device_fail",
    "device_recover",
    "generate_request_arenas",
    "iter_microbatch_arenas",
    "parse_chaos_spec",
    "parse_priority_spec",
    "synthetic_request_arenas",
    "synthetic_request_stream",
    "worker_kill",
]
