"""Columnar request storage: the serving fast path's data layout.

The object-path request stream materializes one
:class:`~repro.serving.queue.LookupRequest` plus ``num_features`` tiny
index arrays per sample, and :func:`~repro.serving.queue.coalesce_requests`
re-concatenates those fragments for every released microbatch — so a
simulated server spends its wall-clock on Python object churn rather
than on lookups.  A :class:`RequestArena` keeps a chunk of requests
*columnar end to end*: per feature one flat ``values`` array plus one
``offsets`` array (request ``i`` owns segment ``[offsets[i],
offsets[i+1])``), and one ``arrival_ms`` array for the whole chunk —
the same feature-major jagged layout the engine consumes, so a
microbatch is a pair of array slices instead of a rebuild.  This is the
data-structure move serving-efficiency work like MicroRec makes on the
inference path: restructure the request representation so the hot loop
only slices views.

:class:`~repro.serving.queue.LookupRequest` remains the object API:
:meth:`RequestArena.request` materializes one as zero-copy views into
the arena's arrays, which is what keeps the PR-1 object path (and every
caller of ``synthetic_request_stream``) working unchanged on top of
arena-backed generation.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature
from repro.serving.queue import LookupRequest, coalesce_requests

#: per-process counter for default shared-memory segment names.
_SHM_SEQ = itertools.count()

#: prefix of every segment this module creates (leak checks scan for it).
SHM_NAME_PREFIX = "recshard-arena"


class RequestArena:
    """One chunk of lookup requests in feature-major columnar layout.

    Args:
        batch: the chunk's lookups as one jagged batch — sample ``i``
            of every feature belongs to request ``i``.
        arrival_ms: per-request arrival timestamps, non-decreasing,
            shape ``(num_requests,)``.
        base_id: request id of the chunk's first request (ids are
            consecutive within a chunk).
        deadline_ms: optional per-request absolute deadlines (float64,
            same shape as ``arrival_ms``); ``inf`` marks "no deadline".
        priority: optional per-request priority classes (int64, lower
            is more important; 0 is the protected top class).

    The two QoS columns travel together: providing either materializes
    both (missing deadlines default to ``inf``, missing priorities to
    class 0), so downstream code only ever sees "no QoS" or "full QoS".
    """

    __slots__ = (
        "batch",
        "arrival_ms",
        "base_id",
        "deadline_ms",
        "priority",
        "_offsets_mat",
    )

    def __init__(
        self,
        batch: JaggedBatch,
        arrival_ms: np.ndarray,
        base_id: int = 0,
        deadline_ms: np.ndarray | None = None,
        priority: np.ndarray | None = None,
    ):
        arrival_ms = np.asarray(arrival_ms, dtype=np.float64)
        if arrival_ms.ndim != 1:
            raise ValueError("arrival_ms must be a 1-D array")
        if batch.num_features and batch.batch_size != arrival_ms.size:
            raise ValueError(
                f"batch holds {batch.batch_size} requests, arrival_ms "
                f"{arrival_ms.size}"
            )
        if arrival_ms.size > 1 and np.any(np.diff(arrival_ms) < 0):
            raise ValueError("arrival_ms must be non-decreasing")
        if deadline_ms is not None or priority is not None:
            if deadline_ms is None:
                deadline_ms = np.full(arrival_ms.size, np.inf)
            else:
                deadline_ms = np.asarray(deadline_ms, dtype=np.float64)
            if priority is None:
                priority = np.zeros(arrival_ms.size, dtype=np.int64)
            else:
                priority = np.asarray(priority, dtype=np.int64)
            if deadline_ms.shape != arrival_ms.shape:
                raise ValueError(
                    f"deadline_ms shape {deadline_ms.shape} != "
                    f"arrival_ms shape {arrival_ms.shape}"
                )
            if priority.shape != arrival_ms.shape:
                raise ValueError(
                    f"priority shape {priority.shape} != "
                    f"arrival_ms shape {arrival_ms.shape}"
                )
            if priority.size and priority.min() < 0:
                raise ValueError("priority classes must be >= 0")
        self.batch = batch
        self.arrival_ms = arrival_ms
        self.base_id = int(base_id)
        self.deadline_ms = deadline_ms
        self.priority = priority
        self._offsets_mat: np.ndarray | None = None

    @property
    def offsets_mat(self) -> np.ndarray:
        """All features' offsets stacked, shape ``(features, requests + 1)``.

        Built once per arena; every microbatch slice then rebases its
        offsets with one vectorized subtraction over all features
        instead of a numpy call per feature.
        """
        if self._offsets_mat is None:
            self._offsets_mat = np.stack([f.offsets for f in self.batch])
        return self._offsets_mat

    @property
    def num_requests(self) -> int:
        return self.arrival_ms.size

    @property
    def num_features(self) -> int:
        return self.batch.num_features

    @property
    def total_lookups(self) -> int:
        return self.batch.total_lookups

    @property
    def has_qos(self) -> bool:
        """Whether this chunk carries deadline/priority columns."""
        return self.deadline_ms is not None

    @property
    def request_lookups(self) -> np.ndarray:
        """Per-request lookup totals across all features, shape ``(n,)``."""
        if not self.batch.features:
            return np.zeros(self.num_requests, dtype=np.int64)
        return np.diff(self.offsets_mat, axis=1).sum(axis=0)

    # ------------------------------------------------------------------
    # Zero-copy views
    # ------------------------------------------------------------------
    def request(self, i: int) -> LookupRequest:
        """Request ``i`` as an object whose feature arrays are views."""
        return LookupRequest(
            request_id=self.base_id + i,
            features=tuple(f.sample(i) for f in self.batch),
            arrival_ms=float(self.arrival_ms[i]),
            deadline_ms=(
                float(self.deadline_ms[i]) if self.has_qos else float("inf")
            ),
            priority=int(self.priority[i]) if self.has_qos else 0,
        )

    def __iter__(self) -> Iterator[LookupRequest]:
        for i in range(self.num_requests):
            yield self.request(i)

    def batch_view(self, start: int, stop: int) -> JaggedBatch:
        """Requests ``[start, stop)`` as one jagged batch.

        Values are contiguous slices of the arena's flat arrays (views,
        no copy); only the rebased offsets (one vectorized subtraction
        over the stacked offsets matrix) are materialized.  This
        replaces the object path's per-batch ``np.concatenate`` of
        per-sample fragments.  The slices inherit the arena's validated
        invariants, so the jagged structures are built through the
        check-free constructor.
        """
        if not self.batch.features:
            return JaggedBatch([])
        mat = self.offsets_mat
        rebased = mat[:, start: stop + 1] - mat[:, start: start + 1]
        lo = mat[:, start].tolist()
        hi = mat[:, stop].tolist()
        features = [
            JaggedFeature.from_validated(f.values[lo[j]: hi[j]], rebased[j])
            for j, f in enumerate(self.batch)
        ]
        return JaggedBatch(features)

    def slice(self, start: int, stop: int) -> "RequestArena":
        """Sub-arena over requests ``[start, stop)`` (values are views)."""
        return RequestArena(
            self.batch_view(start, stop),
            self.arrival_ms[start:stop],
            base_id=self.base_id + start,
            deadline_ms=(
                self.deadline_ms[start:stop] if self.has_qos else None
            ),
            priority=self.priority[start:stop] if self.has_qos else None,
        )

    def take(self, keep: np.ndarray) -> "RequestArena":
        """Sub-arena of the requests where boolean mask ``keep`` is set.

        The admission filter: shed requests drop out of the batch while
        arrival order (and therefore the non-decreasing invariant) is
        preserved.  Unlike :meth:`slice` the kept set may be
        non-contiguous, so values are gathered (copied); ``base_id`` is
        rebased to the first kept request, after which ids within the
        sub-arena are no longer globally meaningful.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self.arrival_ms.shape:
            raise ValueError(
                f"keep mask shape {keep.shape} != requests "
                f"{self.arrival_ms.shape}"
            )
        indices = np.flatnonzero(keep)
        first = int(indices[0]) if indices.size else 0
        return RequestArena(
            self.batch.take(indices),
            self.arrival_ms[indices],
            base_id=self.base_id + first,
            deadline_ms=self.deadline_ms[indices] if self.has_qos else None,
            priority=self.priority[indices] if self.has_qos else None,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def concat(cls, arenas: list["RequestArena"]) -> "RequestArena":
        """Concatenate chunks (used to carry a partial batch forward)."""
        if not arenas:
            raise ValueError("cannot concatenate an empty arena list")
        if len(arenas) == 1:
            return arenas[0]
        num_features = {a.num_features for a in arenas}
        if len(num_features) != 1:
            raise ValueError(f"arenas disagree on feature count: {num_features}")
        features = []
        for j in range(num_features.pop()):
            parts = [a.batch[j] for a in arenas]
            values = np.concatenate([p.values for p in parts])
            offsets = np.zeros(
                sum(p.batch_size for p in parts) + 1, dtype=np.int64
            )
            pos, base = 1, 0
            for p in parts:
                offsets[pos: pos + p.batch_size] = p.offsets[1:] + base
                pos += p.batch_size
                base += p.values.size
            features.append(JaggedFeature(values, offsets))
        deadline = priority = None
        if any(a.has_qos for a in arenas):
            # Mixed chunks normalize to full QoS: parts without the
            # columns contribute the "unconstrained" defaults.
            deadline = np.concatenate(
                [
                    a.deadline_ms
                    if a.has_qos
                    else np.full(a.num_requests, np.inf)
                    for a in arenas
                ]
            )
            priority = np.concatenate(
                [
                    a.priority
                    if a.has_qos
                    else np.zeros(a.num_requests, dtype=np.int64)
                    for a in arenas
                ]
            )
        return cls(
            JaggedBatch(features),
            np.concatenate([a.arrival_ms for a in arenas]),
            base_id=arenas[0].base_id,
            deadline_ms=deadline,
            priority=priority,
        )

    @classmethod
    def from_requests(cls, requests: list[LookupRequest]) -> "RequestArena":
        """Columnarize object-form requests (tests, adapters).

        QoS columns materialize only when some request carries a
        non-default deadline or priority, so default-QoS object streams
        columnarize to the same arena shape as before.
        """
        deadline = priority = None
        if any(
            r.deadline_ms != float("inf") or r.priority != 0
            for r in requests
        ):
            deadline = np.array(
                [r.deadline_ms for r in requests], dtype=np.float64
            )
            priority = np.array(
                [r.priority for r in requests], dtype=np.int64
            )
        return cls(
            coalesce_requests(requests),
            np.array([r.arrival_ms for r in requests], dtype=np.float64),
            base_id=requests[0].request_id,
            deadline_ms=deadline,
            priority=priority,
        )

    # ------------------------------------------------------------------
    # Shared-memory handoff (multi-process serving)
    # ------------------------------------------------------------------
    def to_shm(self, name: str | None = None) -> "ShmArena":
        """Pack this arena into one shared-memory segment.

        Returns the owning :class:`ShmArena`; ship its picklable
        :attr:`ShmArena.handle` across the process boundary and rebuild
        a zero-copy view with :meth:`from_shm`.  The caller owns the
        segment's lifetime (:meth:`ShmArena.unlink`).
        """
        return ShmArena.create(self, name=name)

    @classmethod
    def from_shm(cls, handle: "ShmArenaHandle") -> "ShmArena":
        """Attach to a segment created by :meth:`to_shm`.

        The returned :class:`ShmArena`'s :attr:`ShmArena.arena` exposes
        this arena's arrays as zero-copy views over the shared buffer;
        call :meth:`ShmArena.close` (after dropping the views) when done.
        """
        return ShmArena.attach(handle)


@dataclass(frozen=True)
class ShmArenaHandle:
    """Picklable description of one arena's shared-memory layout.

    The segment holds, 8-byte aligned and in order: the ``arrival_ms``
    array (float64), then — when ``has_qos`` — the ``deadline_ms``
    (float64) and ``priority`` (int64) columns, every feature's
    ``offsets`` array (int64, length ``num_requests + 1`` each), and
    finally every feature's ``values`` array (int64).  Everything
    needed to rebuild the views travels in this handle, so the buffer
    itself carries no header.
    """

    name: str
    num_requests: int
    base_id: int
    feature_lookups: tuple[int, ...]
    has_qos: bool = False

    @property
    def num_features(self) -> int:
        return len(self.feature_lookups)

    @property
    def total_bytes(self) -> int:
        per_request = 3 if self.has_qos else 1
        return 8 * (
            per_request * self.num_requests
            + self.num_features * (self.num_requests + 1)
            + sum(self.feature_lookups)
        )


class ShmArena:
    """One :class:`RequestArena` materialized in a shared-memory segment.

    Two roles, one class: the *owner* side (:meth:`create`) packs an
    arena into a fresh segment and is responsible for :meth:`unlink`;
    the *attached* side (:meth:`attach`, usually a worker process)
    rebuilds the arena as zero-copy views over the same physical pages
    and only ever :meth:`close`\\ s its mapping.  This is the handoff
    that lets the columnar fast path survive the process boundary: a
    microbatch crosses as one segment name plus layout metadata, not as
    a pickle of its arrays.
    """

    __slots__ = ("handle", "owner", "_shm", "_arena")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: ShmArenaHandle,
        owner: bool,
    ):
        self._shm = shm
        self.handle = handle
        self.owner = owner
        self._arena: RequestArena | None = None

    @classmethod
    def create(cls, arena: RequestArena, name: str | None = None) -> "ShmArena":
        """Pack ``arena`` into a new segment (owner side)."""
        handle = ShmArenaHandle(
            name=(
                name
                if name is not None
                else f"{SHM_NAME_PREFIX}-{os.getpid()}-{next(_SHM_SEQ)}"
            ),
            num_requests=arena.num_requests,
            base_id=arena.base_id,
            feature_lookups=tuple(
                int(f.values.size) for f in arena.batch
            ),
            has_qos=arena.has_qos,
        )
        # A segment must be at least one byte even for an empty arena.
        shm = shared_memory.SharedMemory(
            name=handle.name, create=True, size=max(handle.total_bytes, 1)
        )
        raw = np.frombuffer(shm.buf, dtype=np.uint8)
        n = handle.num_requests
        pos = 8 * n
        raw[:pos].view(np.float64)[:] = arena.arrival_ms
        if handle.has_qos:
            raw[pos: pos + 8 * n].view(np.float64)[:] = arena.deadline_ms
            pos += 8 * n
            raw[pos: pos + 8 * n].view(np.int64)[:] = arena.priority
            pos += 8 * n
        for feature in arena.batch:
            raw[pos: pos + 8 * (n + 1)].view(np.int64)[:] = feature.offsets
            pos += 8 * (n + 1)
        for feature in arena.batch:
            end = pos + 8 * feature.values.size
            raw[pos:end].view(np.int64)[:] = feature.values
            pos = end
        del raw  # release the buffer export so close() stays possible
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: ShmArenaHandle) -> "ShmArena":
        """Attach to an existing segment (worker side).

        Attach-side resource-tracker registration is suppressed: the
        owner's registration is the segment's single cleanup entry.
        Before Python 3.13 ``SharedMemory`` registers on attach too,
        and with duplicate-tolerant requeue (crash recovery) a late
        attach can re-register a name *after* the owner's unlink
        unregistered it — a stale tracker entry that shows up as a
        spurious "leaked shared_memory" warning at shutdown.
        """
        from multiprocessing import resource_tracker

        real_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = real_register
        return cls(shm, handle, owner=False)

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def arena(self) -> RequestArena:
        """The arena as zero-copy views over the shared buffer.

        Built once per attachment; all feature arrays and ``arrival_ms``
        alias the segment's pages (no duplication), so writes through
        one process's views are visible to every other attachment.
        """
        if self._arena is None:
            handle = self.handle
            n = handle.num_requests
            raw = np.frombuffer(self._shm.buf, dtype=np.uint8)
            arrival = raw[: 8 * n].view(np.float64)
            pos = 8 * n
            deadline = priority = None
            if handle.has_qos:
                deadline = raw[pos: pos + 8 * n].view(np.float64)
                pos += 8 * n
                priority = raw[pos: pos + 8 * n].view(np.int64)
                pos += 8 * n
            offsets = []
            for _ in range(handle.num_features):
                offsets.append(raw[pos: pos + 8 * (n + 1)].view(np.int64))
                pos += 8 * (n + 1)
            features = []
            for j, lookups in enumerate(handle.feature_lookups):
                end = pos + 8 * lookups
                features.append(
                    JaggedFeature.from_validated(
                        raw[pos:end].view(np.int64), offsets[j]
                    )
                )
                pos = end
            self._arena = RequestArena(
                JaggedBatch(features),
                arrival,
                base_id=handle.base_id,
                deadline_ms=deadline,
                priority=priority,
            )
        return self._arena

    def close(self) -> None:
        """Drop this process's mapping (owner and attached sides).

        The cached arena views are released first; if the caller still
        holds live views into the buffer the unmap is deferred to
        process exit rather than raised — the segment's *lifetime* is
        governed by :meth:`unlink`, not by mappings.
        """
        self._arena = None
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent).

        Safe while other processes still hold mappings — POSIX keeps
        the pages alive until the last mapping drops — and after a
        prior :meth:`close` of the owner's own mapping.
        """
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
