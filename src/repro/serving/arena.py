"""Columnar request storage: the serving fast path's data layout.

The object-path request stream materializes one
:class:`~repro.serving.queue.LookupRequest` plus ``num_features`` tiny
index arrays per sample, and :func:`~repro.serving.queue.coalesce_requests`
re-concatenates those fragments for every released microbatch — so a
simulated server spends its wall-clock on Python object churn rather
than on lookups.  A :class:`RequestArena` keeps a chunk of requests
*columnar end to end*: per feature one flat ``values`` array plus one
``offsets`` array (request ``i`` owns segment ``[offsets[i],
offsets[i+1])``), and one ``arrival_ms`` array for the whole chunk —
the same feature-major jagged layout the engine consumes, so a
microbatch is a pair of array slices instead of a rebuild.  This is the
data-structure move serving-efficiency work like MicroRec makes on the
inference path: restructure the request representation so the hot loop
only slices views.

:class:`~repro.serving.queue.LookupRequest` remains the object API:
:meth:`RequestArena.request` materializes one as zero-copy views into
the arena's arrays, which is what keeps the PR-1 object path (and every
caller of ``synthetic_request_stream``) working unchanged on top of
arena-backed generation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature
from repro.serving.queue import LookupRequest, coalesce_requests


class RequestArena:
    """One chunk of lookup requests in feature-major columnar layout.

    Args:
        batch: the chunk's lookups as one jagged batch — sample ``i``
            of every feature belongs to request ``i``.
        arrival_ms: per-request arrival timestamps, non-decreasing,
            shape ``(num_requests,)``.
        base_id: request id of the chunk's first request (ids are
            consecutive within a chunk).
    """

    __slots__ = ("batch", "arrival_ms", "base_id", "_offsets_mat")

    def __init__(self, batch: JaggedBatch, arrival_ms: np.ndarray, base_id: int = 0):
        arrival_ms = np.asarray(arrival_ms, dtype=np.float64)
        if arrival_ms.ndim != 1:
            raise ValueError("arrival_ms must be a 1-D array")
        if batch.num_features and batch.batch_size != arrival_ms.size:
            raise ValueError(
                f"batch holds {batch.batch_size} requests, arrival_ms "
                f"{arrival_ms.size}"
            )
        if arrival_ms.size > 1 and np.any(np.diff(arrival_ms) < 0):
            raise ValueError("arrival_ms must be non-decreasing")
        self.batch = batch
        self.arrival_ms = arrival_ms
        self.base_id = int(base_id)
        self._offsets_mat: np.ndarray | None = None

    @property
    def offsets_mat(self) -> np.ndarray:
        """All features' offsets stacked, shape ``(features, requests + 1)``.

        Built once per arena; every microbatch slice then rebases its
        offsets with one vectorized subtraction over all features
        instead of a numpy call per feature.
        """
        if self._offsets_mat is None:
            self._offsets_mat = np.stack([f.offsets for f in self.batch])
        return self._offsets_mat

    @property
    def num_requests(self) -> int:
        return self.arrival_ms.size

    @property
    def num_features(self) -> int:
        return self.batch.num_features

    @property
    def total_lookups(self) -> int:
        return self.batch.total_lookups

    # ------------------------------------------------------------------
    # Zero-copy views
    # ------------------------------------------------------------------
    def request(self, i: int) -> LookupRequest:
        """Request ``i`` as an object whose feature arrays are views."""
        return LookupRequest(
            request_id=self.base_id + i,
            features=tuple(f.sample(i) for f in self.batch),
            arrival_ms=float(self.arrival_ms[i]),
        )

    def __iter__(self) -> Iterator[LookupRequest]:
        for i in range(self.num_requests):
            yield self.request(i)

    def batch_view(self, start: int, stop: int) -> JaggedBatch:
        """Requests ``[start, stop)`` as one jagged batch.

        Values are contiguous slices of the arena's flat arrays (views,
        no copy); only the rebased offsets (one vectorized subtraction
        over the stacked offsets matrix) are materialized.  This
        replaces the object path's per-batch ``np.concatenate`` of
        per-sample fragments.  The slices inherit the arena's validated
        invariants, so the jagged structures are built through the
        check-free constructor.
        """
        if not self.batch.features:
            return JaggedBatch([])
        mat = self.offsets_mat
        rebased = mat[:, start: stop + 1] - mat[:, start: start + 1]
        lo = mat[:, start].tolist()
        hi = mat[:, stop].tolist()
        features = [
            JaggedFeature.from_validated(f.values[lo[j]: hi[j]], rebased[j])
            for j, f in enumerate(self.batch)
        ]
        return JaggedBatch(features)

    def slice(self, start: int, stop: int) -> "RequestArena":
        """Sub-arena over requests ``[start, stop)`` (values are views)."""
        return RequestArena(
            self.batch_view(start, stop),
            self.arrival_ms[start:stop],
            base_id=self.base_id + start,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def concat(cls, arenas: list["RequestArena"]) -> "RequestArena":
        """Concatenate chunks (used to carry a partial batch forward)."""
        if not arenas:
            raise ValueError("cannot concatenate an empty arena list")
        if len(arenas) == 1:
            return arenas[0]
        num_features = {a.num_features for a in arenas}
        if len(num_features) != 1:
            raise ValueError(f"arenas disagree on feature count: {num_features}")
        features = []
        for j in range(num_features.pop()):
            parts = [a.batch[j] for a in arenas]
            values = np.concatenate([p.values for p in parts])
            offsets = np.zeros(
                sum(p.batch_size for p in parts) + 1, dtype=np.int64
            )
            pos, base = 1, 0
            for p in parts:
                offsets[pos: pos + p.batch_size] = p.offsets[1:] + base
                pos += p.batch_size
                base += p.values.size
            features.append(JaggedFeature(values, offsets))
        return cls(
            JaggedBatch(features),
            np.concatenate([a.arrival_ms for a in arenas]),
            base_id=arenas[0].base_id,
        )

    @classmethod
    def from_requests(cls, requests: list[LookupRequest]) -> "RequestArena":
        """Columnarize object-form requests (tests, adapters)."""
        return cls(
            coalesce_requests(requests),
            np.array([r.arrival_ms for r in requests], dtype=np.float64),
            base_id=requests[0].request_id,
        )
