"""Neural network layers in numpy with manual backward passes.

Minimal but real: enough to train the Figure 2 DLRM end to end and to
demonstrate that RecShard's remapping layer leaves model computation
bit-identical while redirecting storage across memory tiers.
"""

from __future__ import annotations

import numpy as np

from repro.core.remap import RemappingTable
from repro.data.batch import JaggedFeature


class Linear:
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self._input: np.ndarray | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight = self._input.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def sgd_step(self, lr: float) -> None:
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias


class MLP:
    """Stack of Linear layers with ReLU between them (none after the last)."""

    def __init__(self, layer_sizes: list[int], rng: np.random.Generator):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.layers = [
            Linear(layer_sizes[i], layer_sizes[i + 1], rng)
            for i in range(len(layer_sizes) - 1)
        ]
        self._relu_masks: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._relu_masks = []
        for i, layer in enumerate(self.layers):
            x = layer.forward(x)
            if i < len(self.layers) - 1:
                mask = x > 0
                self._relu_masks.append(mask)
                x = x * mask
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for i in range(len(self.layers) - 1, -1, -1):
            if i < len(self.layers) - 1:
                grad_out = grad_out * self._relu_masks[i]
            grad_out = self.layers[i].backward(grad_out)
        return grad_out

    def sgd_step(self, lr: float) -> None:
        for layer in self.layers:
            layer.sgd_step(lr)


class EmbeddingBag:
    """Embedding table with sum pooling over jagged inputs (Figure 3).

    NULL samples (zero-length segments) pool to the zero vector, exactly
    as the paper's Figure 3 describes.
    """

    def __init__(self, num_rows: int, dim: int, rng: np.random.Generator):
        self.weight = rng.normal(0.0, 0.05, size=(num_rows, dim))
        self._last: JaggedFeature | None = None

    @property
    def num_rows(self) -> int:
        return self.weight.shape[0]

    @property
    def dim(self) -> int:
        return self.weight.shape[1]

    def forward(self, feature: JaggedFeature) -> np.ndarray:
        self._last = feature
        if feature.values.size == 0:
            return np.zeros((feature.batch_size, self.dim))
        gathered = self.weight[feature.values]
        return _segment_sum(gathered, feature.offsets, feature.batch_size)

    def backward(self, grad_out: np.ndarray, lr: float) -> None:
        """Sparse SGD: scatter-add the pooled gradient into touched rows."""
        feature = self._last
        if feature is None:
            raise RuntimeError("backward called before forward")
        if feature.values.size == 0:
            return
        lengths = feature.lengths
        per_lookup = np.repeat(grad_out, lengths, axis=0)
        np.subtract.at(self.weight, feature.values, lr * per_lookup)


def _segment_sum(
    values: np.ndarray, offsets: np.ndarray, batch_size: int
) -> np.ndarray:
    """Sum-pool flat gathered rows into per-sample vectors."""
    out = np.zeros((batch_size, values.shape[1]))
    segment_ids = np.repeat(np.arange(batch_size), np.diff(offsets))
    np.add.at(out, segment_ids, values)
    return out


class TieredEmbeddingBag:
    """An EmbeddingBag split across memory tiers via a remapping table.

    Storage is physically separate per tier (one array per tier), the
    remapping table translating hashed indices to (tier, offset).  Every
    lookup is counted per tier, demonstrating the access accounting of
    Tables 5-6 inside real training.  Forward output is bit-identical to
    an unsharded :class:`EmbeddingBag` holding the same logical weights.
    """

    def __init__(self, weight: np.ndarray, remap: RemappingTable):
        if weight.shape[0] != remap.hash_size:
            raise ValueError(
                f"weight has {weight.shape[0]} rows, remap expects {remap.hash_size}"
            )
        self.remap = remap
        self.dim = weight.shape[1]
        # Physically partition the logical table by tier.
        self.tier_storage: list[np.ndarray] = []
        for tier in range(remap.num_tiers):
            rows = remap.rows_per_tier[tier]
            block = np.empty((rows, self.dim))
            for offset in range(rows):
                block[offset] = weight[remap.original_row(tier, offset)]
            self.tier_storage.append(block)
        self.access_counts = np.zeros(remap.num_tiers, dtype=np.int64)
        self._last: tuple | None = None

    def forward(self, feature: JaggedFeature) -> np.ndarray:
        tiers, offsets = self.remap.apply(feature.values)
        if feature.values.size:
            self.access_counts += np.bincount(tiers, minlength=self.remap.num_tiers)
        gathered = np.zeros((feature.values.size, self.dim))
        for tier in range(self.remap.num_tiers):
            mask = tiers == tier
            if mask.any():
                gathered[mask] = self.tier_storage[tier][offsets[mask]]
        self._last = (feature, tiers, offsets)
        return _segment_sum(gathered, feature.offsets, feature.batch_size)

    def backward(self, grad_out: np.ndarray, lr: float) -> None:
        if self._last is None:
            raise RuntimeError("backward called before forward")
        feature, tiers, offsets = self._last
        if feature.values.size == 0:
            return
        per_lookup = np.repeat(grad_out, feature.lengths, axis=0)
        for tier in range(self.remap.num_tiers):
            mask = tiers == tier
            if mask.any():
                np.subtract.at(
                    self.tier_storage[tier], offsets[mask], lr * per_lookup[mask]
                )

    def logical_weight(self) -> np.ndarray:
        """Reassemble the logical (hashed-index-ordered) table."""
        out = np.empty((self.remap.hash_size, self.dim))
        for tier in range(self.remap.num_tiers):
            rows = self.remap.rows_per_tier[tier]
            if rows:
                row_ids = [self.remap.original_row(tier, o) for o in range(rows)]
                out[row_ids] = self.tier_storage[tier]
        return out


def dot_interaction(bottom_out: np.ndarray, pooled: list[np.ndarray]) -> np.ndarray:
    """DLRM dot feature interaction.

    Stacks the bottom-MLP output with every pooled embedding and takes
    all pairwise dot products (lower triangle), concatenated with the
    bottom-MLP output itself.
    """
    stacked = np.stack([bottom_out] + pooled, axis=1)  # (B, F, D)
    gram = np.einsum("bfd,bgd->bfg", stacked, stacked)
    num_vectors = stacked.shape[1]
    li, lj = np.tril_indices(num_vectors, k=-1)
    return np.concatenate([bottom_out, gram[:, li, lj]], axis=1)


def dot_interaction_backward(
    grad_out: np.ndarray, bottom_out: np.ndarray, pooled: list[np.ndarray]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Backward pass of :func:`dot_interaction`."""
    batch, dense_dim = bottom_out.shape
    stacked = np.stack([bottom_out] + pooled, axis=1)
    num_vectors = stacked.shape[1]
    li, lj = np.tril_indices(num_vectors, k=-1)

    grad_dense = grad_out[:, :dense_dim].copy()
    grad_pairs = grad_out[:, dense_dim:]

    grad_gram = np.zeros((batch, num_vectors, num_vectors))
    grad_gram[:, li, lj] = grad_pairs
    # d(gram)/d(stacked): symmetric contribution of each pair.
    grad_stacked = np.einsum("bfg,bgd->bfd", grad_gram, stacked)
    grad_stacked += np.einsum("bgf,bgd->bfd", grad_gram, stacked)

    grad_bottom = grad_stacked[:, 0, :] + grad_dense
    grad_pooled = [grad_stacked[:, 1 + k, :] for k in range(len(pooled))]
    return grad_bottom, grad_pooled
