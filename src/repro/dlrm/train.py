"""Training loop utilities for the numpy DLRM."""

from __future__ import annotations

import numpy as np

from repro.data.batch import JaggedBatch
from repro.dlrm.model import DLRM


def bce_loss(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy (the DLRM CTR objective)."""
    eps = 1e-12
    probs = np.clip(probs, eps, 1.0 - eps)
    return float(
        -np.mean(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    )


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in ``scores`` get the average rank, matching the trapezoidal
    AUC.  Returns 0.5 for degenerate single-class labels so quality
    deltas stay finite on tiny evaluation slices.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    pos = labels > 0.5
    num_pos = int(pos.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1, dtype=np.float64)
    # Average ranks within tied score groups.
    sorted_scores = scores[order]
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [scores.size]])
    for lo, hi in zip(starts, stops):
        if hi - lo > 1:
            ranks[order[lo:hi]] = 0.5 * (lo + 1 + hi)
    rank_sum = float(ranks[pos].sum())
    return (rank_sum - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)


def synthetic_ctr_labels(
    dense: np.ndarray, sparse: JaggedBatch, rng: np.random.Generator
) -> np.ndarray:
    """Labels with learnable structure for the example tasks.

    Clicks correlate with the first dense feature and with the presence
    (coverage) of the first sparse feature — enough signal for the tiny
    DLRM to demonstrably reduce loss.
    """
    logit = 1.5 * dense[:, 0] - 0.5
    if sparse.num_features:
        present = (sparse[0].lengths > 0).astype(np.float64)
        logit = logit + 0.8 * present
    probs = 1.0 / (1.0 + np.exp(-logit))
    return (rng.random(dense.shape[0]) < probs).astype(np.float64)


def train_epoch(
    model: DLRM,
    batches: list[tuple[np.ndarray, JaggedBatch, np.ndarray]],
    lr: float = 0.1,
) -> list[float]:
    """Train over (dense, sparse, labels) batches; returns per-batch loss."""
    losses = []
    for dense, sparse, labels in batches:
        probs = model.forward(dense, sparse)
        losses.append(bce_loss(probs, labels))
        model.backward(labels, lr)
    return losses
