"""Training loop utilities for the numpy DLRM."""

from __future__ import annotations

import numpy as np

from repro.data.batch import JaggedBatch
from repro.dlrm.model import DLRM


def bce_loss(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy (the DLRM CTR objective)."""
    eps = 1e-12
    probs = np.clip(probs, eps, 1.0 - eps)
    return float(
        -np.mean(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    )


def synthetic_ctr_labels(
    dense: np.ndarray, sparse: JaggedBatch, rng: np.random.Generator
) -> np.ndarray:
    """Labels with learnable structure for the example tasks.

    Clicks correlate with the first dense feature and with the presence
    (coverage) of the first sparse feature — enough signal for the tiny
    DLRM to demonstrably reduce loss.
    """
    logit = 1.5 * dense[:, 0] - 0.5
    if sparse.num_features:
        present = (sparse[0].lengths > 0).astype(np.float64)
        logit = logit + 0.8 * present
    probs = 1.0 / (1.0 + np.exp(-logit))
    return (rng.random(dense.shape[0]) < probs).astype(np.float64)


def train_epoch(
    model: DLRM,
    batches: list[tuple[np.ndarray, JaggedBatch, np.ndarray]],
    lr: float = 0.1,
) -> list[float]:
    """Train over (dense, sparse, labels) batches; returns per-batch loss."""
    losses = []
    for dense, sparse, labels in batches:
        probs = model.forward(dense, sparse)
        losses.append(bce_loss(probs, labels))
        model.backward(labels, lr)
    return losses
