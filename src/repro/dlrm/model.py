"""The DLRM model (Figure 2) in numpy.

Dense features pass through the bottom MLP; sparse features pass through
embedding bags with sum pooling; the dot feature-interaction layer
combines them; the top MLP plus a sigmoid produce the CTR estimate.
Embedding bags may be plain or tiered (RecShard-remapped) — the two are
numerically identical, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.batch import JaggedBatch
from repro.dlrm.layers import (
    EmbeddingBag,
    MLP,
    TieredEmbeddingBag,
    dot_interaction,
    dot_interaction_backward,
)


@dataclass
class DLRMConfig:
    """Architecture hyperparameters."""

    dense_features: int
    table_rows: list[int]
    embedding_dim: int = 16
    bottom_layers: list[int] = field(default_factory=lambda: [32, 16])
    top_layers: list[int] = field(default_factory=lambda: [64, 32])
    seed: int = 0

    @property
    def num_tables(self) -> int:
        return len(self.table_rows)

    def interaction_dim(self) -> int:
        num_vectors = 1 + self.num_tables
        return self.embedding_dim + num_vectors * (num_vectors - 1) // 2


class DLRM:
    """Canonical DLRM with manual forward/backward passes."""

    def __init__(self, config: DLRMConfig):
        if not config.table_rows:
            raise ValueError("DLRM needs at least one embedding table")
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.bottom = MLP(
            [config.dense_features] + config.bottom_layers + [config.embedding_dim],
            rng,
        )
        self.tables: list = [
            EmbeddingBag(rows, config.embedding_dim, rng)
            for rows in config.table_rows
        ]
        self.top = MLP([config.interaction_dim()] + config.top_layers + [1], rng)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------
    def replace_tables(self, tables: list) -> None:
        """Swap embedding bags (e.g. for :class:`TieredEmbeddingBag`)."""
        if len(tables) != len(self.tables):
            raise ValueError(
                f"expected {len(self.tables)} tables, got {len(tables)}"
            )
        self.tables = tables

    def tier_access_counts(self) -> np.ndarray | None:
        """Summed per-tier access counts when tables are tiered."""
        counts = None
        for table in self.tables:
            if isinstance(table, TieredEmbeddingBag):
                counts = (
                    table.access_counts.copy()
                    if counts is None
                    else counts + table.access_counts
                )
        return counts

    # ------------------------------------------------------------------
    def forward(self, dense: np.ndarray, sparse: JaggedBatch) -> np.ndarray:
        """Predicted CTR probabilities, shape (batch,)."""
        if sparse.num_features != len(self.tables):
            raise ValueError(
                f"batch has {sparse.num_features} sparse features, model has "
                f"{len(self.tables)}"
            )
        bottom_out = self.bottom.forward(dense)
        pooled = [table.forward(feat) for table, feat in zip(self.tables, sparse)]
        interacted = dot_interaction(bottom_out, pooled)
        logits = self.top.forward(interacted)[:, 0]
        probs = 1.0 / (1.0 + np.exp(-logits))
        self._cache = (bottom_out, pooled, probs)
        return probs

    def backward(self, labels: np.ndarray, lr: float) -> None:
        """BCE gradient + SGD update through every component."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        bottom_out, pooled, probs = self._cache
        batch = probs.shape[0]
        # d(BCE)/d(logits) = (p - y) / batch
        grad_logits = ((probs - labels) / batch)[:, None]
        grad_interacted = self.top.backward(grad_logits)
        grad_bottom, grad_pooled = dot_interaction_backward(
            grad_interacted, bottom_out, pooled
        )
        self.bottom.backward(grad_bottom)
        self.top.sgd_step(lr)
        self.bottom.sgd_step(lr)
        for table, grad in zip(self.tables, grad_pooled):
            table.backward(grad, lr)
        self._cache = None
