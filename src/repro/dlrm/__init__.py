"""A numpy DLRM substrate (the Figure 2 architecture).

Stands in for the paper's PyTorch/FBGEMM DLRM: bottom MLP over dense
features, embedding bags with sum pooling over sparse features, dot
feature interaction, top MLP, and sigmoid CTR output — with manual
backward passes and SGD, plus tiered embedding storage that honours a
RecShard remapping layer and counts per-tier accesses.
"""

from repro.dlrm.layers import (
    EmbeddingBag,
    Linear,
    MLP,
    TieredEmbeddingBag,
    dot_interaction,
)
from repro.dlrm.model import DLRM, DLRMConfig
from repro.dlrm.train import (
    auc_score,
    bce_loss,
    synthetic_ctr_labels,
    train_epoch,
)

__all__ = [
    "DLRM",
    "DLRMConfig",
    "EmbeddingBag",
    "Linear",
    "MLP",
    "TieredEmbeddingBag",
    "auc_score",
    "bce_loss",
    "dot_interaction",
    "synthetic_ctr_labels",
    "train_epoch",
]
