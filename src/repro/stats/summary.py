"""Characterization summaries over a model profile (Figures 4-6)."""

from __future__ import annotations

import numpy as np

from repro.stats.profiler import ModelProfile


def quantiles(values, qs=(0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)) -> dict[float, float]:
    """Named quantiles of a sequence, as a plain dict."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {q: float("nan") for q in qs}
    return {q: float(np.quantile(arr, q)) for q in qs}


def characterization_summary(profile: ModelProfile) -> dict:
    """Aggregate the Section 3 characterization over all profiled tables.

    Returns the spreads behind Figures 5 (CDF skew), 6a (pooling factors)
    and 6b (coverage), plus the hash under-utilization of Section 3.4.
    """
    poolings = [t.avg_pooling for t in profile]
    coverages = [t.coverage for t in profile]
    # Skew proxy: access fraction covered by the hottest 10% of rows.
    top10_coverage = [
        t.cdf.coverage_of_rows(max(1, t.hash_size // 10)) for t in profile
    ]
    dead_fraction = [
        1.0 - t.live_rows / t.hash_size if t.hash_size else 0.0 for t in profile
    ]
    return {
        "num_tables": len(profile),
        "avg_pooling": quantiles(poolings),
        "coverage": quantiles(coverages),
        "top10pct_rows_access_share": quantiles(top10_coverage),
        "dead_row_fraction": quantiles(dead_fraction),
    }


def format_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`characterization_summary`."""
    lines = [f"tables: {summary['num_tables']}"]
    for key in (
        "avg_pooling",
        "coverage",
        "top10pct_rows_access_share",
        "dead_row_fraction",
    ):
        stats = summary[key]
        rendered = ", ".join(f"p{int(q * 100)}={v:.3g}" for q, v in stats.items())
        lines.append(f"{key}: {rendered}")
    return "\n".join(lines)
