"""Trace profiling: estimating per-EMB statistics from sampled data.

Implements Section 4.1: sample a small fraction (~1%) of training
samples, hash them (the trace already carries hashed indices), and
accumulate three statistics per table — the post-hash value frequency
distribution, the average pooling factor, and the coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.batch import JaggedBatch
from repro.data.model import ModelSpec
from repro.stats.cdf import FrequencyCDF


@dataclass
class TableStats:
    """Profiled statistics for one embedding table.

    ``counts`` holds (possibly fractional, for analytic profiles) access
    counts per hashed row; ``samples_present`` / ``samples_seen`` give
    coverage; total accesses over present samples give the mean pooling
    factor.
    """

    name: str
    hash_size: int
    counts: np.ndarray
    samples_present: int = 0
    samples_seen: int = 0
    _cdf: FrequencyCDF | None = field(default=None, repr=False, compare=False)

    @property
    def total_accesses(self) -> float:
        return float(self.counts.sum())

    @property
    def avg_pooling(self) -> float:
        """Mean pooling factor over samples where the feature is present."""
        if self.samples_present == 0:
            return 0.0
        return self.total_accesses / self.samples_present

    @property
    def coverage(self) -> float:
        """Fraction of samples in which the feature is present."""
        if self.samples_seen == 0:
            return 0.0
        return self.samples_present / self.samples_seen

    @property
    def live_rows(self) -> int:
        return int(np.count_nonzero(self.counts))

    @property
    def cdf(self) -> FrequencyCDF:
        """Frequency CDF over this table's rows (cached)."""
        if self._cdf is None:
            self._cdf = FrequencyCDF(self.counts)
        return self._cdf

    def expected_lookups_per_sample(self) -> float:
        return self.coverage * self.avg_pooling


@dataclass
class ModelProfile:
    """Profiled statistics for every table of a model."""

    model_name: str
    tables: list[TableStats]
    sample_rate: float = 1.0
    samples_profiled: int = 0

    def __getitem__(self, index: int) -> TableStats:
        return self.tables[index]

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)


class TraceProfiler:
    """Streaming profiler over jagged batches with Bernoulli row sampling.

    Args:
        model: spec of the model being profiled (fixes table count/sizes).
        sample_rate: probability each training sample enters the profile
            (the paper finds <=1% suffices on production stores).
        seed: sampling RNG seed.
    """

    def __init__(self, model: ModelSpec, sample_rate: float = 0.01, seed: int = 0):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.model = model
        self.sample_rate = float(sample_rate)
        self._rng = np.random.default_rng(seed)
        # Row counts for all tables live in one flat array; table j owns
        # rows [_row_base[j], _row_base[j+1]).  One offset-shifted
        # bincount per batch then covers every table at once.
        self._row_base = np.zeros(model.num_tables + 1, dtype=np.int64)
        np.cumsum([t.num_rows for t in model.tables], out=self._row_base[1:])
        self._counts_flat = np.zeros(int(self._row_base[-1]), dtype=np.float64)
        self._shift_scratch = np.empty(0, dtype=np.int64)
        self._present = np.zeros(model.num_tables, dtype=np.int64)
        self._samples = 0

    def consume(self, batch: JaggedBatch) -> int:
        """Fold one batch into the profile; returns samples accepted.

        Vectorized across features: lookups are shifted by their
        table's row base into a flattened feature-major buffer and
        counted with a single ``bincount``; presence tallies come from
        one stacked-offsets pass.  No Python loop per feature per batch
        beyond the buffer fill.
        """
        if batch.num_features != self.model.num_tables:
            raise ValueError(
                f"batch has {batch.num_features} features, model has "
                f"{self.model.num_tables}"
            )
        if self.sample_rate < 1.0:
            mask = self._rng.random(batch.batch_size) < self.sample_rate
            chosen = np.flatnonzero(mask)
            if chosen.size == 0:
                return 0
            batch = batch.take(chosen)
        accepted = batch.batch_size
        self._samples += accepted
        if not batch.num_features:
            return accepted
        total = batch.total_lookups
        if total:
            if self._shift_scratch.size < total:
                self._shift_scratch = np.empty(total, dtype=np.int64)
            shifted = self._shift_scratch[:total]
            tables, starts, pos = [], [], 0
            for j, feature in enumerate(batch):
                values = feature.values
                if values.size:
                    tables.append(j)
                    starts.append(pos)
                    np.add(
                        values,
                        self._row_base[j],
                        out=shifted[pos: pos + values.size],
                    )
                    pos += values.size
            # In the flat layout an out-of-range hashed index would land
            # in a *neighboring table's* rows instead of raising the
            # shape error the per-table bincount used to — so check the
            # per-feature extrema stay inside each table's row block.
            tables = np.asarray(tables, dtype=np.int64)
            starts = np.asarray(starts, dtype=np.int64)
            lo = np.minimum.reduceat(shifted, starts) < self._row_base[tables]
            hi = np.maximum.reduceat(shifted, starts) >= self._row_base[tables + 1]
            if lo.any() or hi.any():
                bad = int(tables[np.argmax(lo | hi)])
                raise ValueError(
                    f"feature {bad} has lookup values outside "
                    f"[0, {self.model.tables[bad].num_rows})"
                )
            self._counts_flat += np.bincount(
                shifted, minlength=self._counts_flat.size
            )
        offsets = np.stack([f.offsets for f in batch])
        self._present += np.count_nonzero(np.diff(offsets, axis=1), axis=1)
        return accepted

    def finish(self) -> ModelProfile:
        """Materialize the profile accumulated so far."""
        tables = [
            TableStats(
                name=spec.name,
                hash_size=spec.num_rows,
                counts=self._counts_flat[
                    self._row_base[j]: self._row_base[j + 1]
                ].copy(),
                samples_present=int(self._present[j]),
                samples_seen=self._samples,
            )
            for j, spec in enumerate(self.model.tables)
        ]
        return ModelProfile(
            model_name=self.model.name,
            tables=tables,
            sample_rate=self.sample_rate,
            samples_profiled=self._samples,
        )


def profile_trace(
    model: ModelSpec,
    generator,
    num_batches: int,
    sample_rate: float = 0.01,
    seed: int = 0,
) -> ModelProfile:
    """Profile ``num_batches`` batches from a trace generator."""
    profiler = TraceProfiler(model, sample_rate=sample_rate, seed=seed)
    for batch in generator.batches(num_batches):
        profiler.consume(batch)
    return profiler.finish()


def analytic_profile(
    model: ModelSpec, virtual_samples: int = 1_000_000
) -> ModelProfile:
    """Exact expected profile straight from the model spec.

    Equivalent to profiling an infinitely long trace: per-row expected
    counts are the post-hash pmf scaled by the feature's expected access
    volume.  Used by benchmarks that want to skip trace profiling.
    """
    tables = []
    for spec in model.tables:
        feature = spec.feature
        present = feature.coverage * virtual_samples
        expected_accesses = present * feature.avg_pooling
        counts = feature.post_hash_pmf() * expected_accesses
        tables.append(
            TableStats(
                name=spec.name,
                hash_size=spec.num_rows,
                counts=counts,
                samples_present=int(round(present)),
                samples_seen=virtual_samples,
            )
        )
    return ModelProfile(
        model_name=model.name,
        tables=tables,
        sample_rate=1.0,
        samples_profiled=virtual_samples,
    )
