"""Training-data profiling (Section 4.1).

RecShard estimates three per-EMB statistics from a ~1% sample of the
training data: the post-hash value frequency CDF, the average pooling
factor, and the coverage.  This package computes them from traces
(:class:`TraceProfiler`) or analytically from a model spec
(:func:`analytic_profile`).
"""

from repro.stats.cdf import FrequencyCDF, PiecewiseICDF
from repro.stats.profiler import (
    ModelProfile,
    TableStats,
    TraceProfiler,
    analytic_profile,
    profile_trace,
)
from repro.stats.summary import characterization_summary, quantiles

__all__ = [
    "FrequencyCDF",
    "ModelProfile",
    "PiecewiseICDF",
    "TableStats",
    "TraceProfiler",
    "analytic_profile",
    "characterization_summary",
    "profile_trace",
    "quantiles",
]
