"""Frequency CDFs and their inverses (the heart of RecShard's statistics).

A :class:`FrequencyCDF` ranks the rows of one embedding table by access
frequency and answers the two questions the MILP needs: "what fraction
of accesses do the hottest *k* rows cover?" and its inverse, "how many
rows cover an access fraction *p*?" (the ICDF of Section 4.2).

The ICDF — rows as a function of covered access fraction — is *convex*
for every table: rows are ranked by descending frequency, so each extra
unit of coverage costs at least as many rows as the previous one.  That
convexity is what lets the convex MILP formulation replace the paper's
per-step binaries with linear cuts (see ``repro/core/formulation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class FrequencyCDF:
    """Access-frequency CDF over one table's rows.

    Args:
        counts: per-row access counts (or expected counts / probabilities);
            length equals the table's hash size.  Rows with zero count are
            the dead rows of Section 3.4.
    """

    def __init__(self, counts: np.ndarray):
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1:
            raise ValueError("counts must be a 1-D array over table rows")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        self.hash_size = int(counts.size)
        # Stable argsort keeps tied rows in index order, making the hot-row
        # ranking deterministic for the remapping layer.
        self.row_order = np.argsort(-counts, kind="stable").astype(np.int64)
        sorted_counts = counts[self.row_order]
        self.total = float(sorted_counts.sum())
        self.live_rows = int(np.count_nonzero(sorted_counts))
        if self.total > 0:
            self._cum_fraction = np.clip(
                np.cumsum(sorted_counts) / self.total, 0.0, 1.0
            )
            self._cum_fraction[-1] = 1.0
        else:
            self._cum_fraction = np.zeros(self.hash_size)

    @property
    def cum_fraction(self) -> np.ndarray:
        """Coverage prefix per rank: ``cum_fraction[k]`` is the access
        fraction covered by the hottest ``k + 1`` rows.  Treat as
        read-only — the planner workspace stacks these grids directly.
        """
        return self._cum_fraction

    # ------------------------------------------------------------------
    # Forward and inverse queries
    # ------------------------------------------------------------------
    def coverage_of_rows(self, rows: int) -> float:
        """Fraction of all accesses covered by the hottest ``rows`` rows."""
        if rows <= 0:
            return 0.0
        if rows >= self.hash_size:
            return 1.0 if self.total > 0 else 0.0
        return float(self._cum_fraction[rows - 1])

    def coverage_of_rows_many(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`coverage_of_rows` over an array of row counts.

        Element-for-element identical to the scalar method (including
        the ``rows <= 0`` and ``rows >= hash_size`` edge cases), so the
        batched plan evaluator can take whole ``rows_per_tier`` grids in
        one shot.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if self.total <= 0:
            return np.zeros(rows.shape, dtype=np.float64)
        # Clip before the take so out-of-range counts never index; the
        # edge cases are then painted over the gathered values.
        idx = np.clip(rows - 1, 0, self.hash_size - 1)
        out = self._cum_fraction[idx]
        out = np.where(rows <= 0, 0.0, out)
        return np.where(rows >= self.hash_size, 1.0, out)

    def rows_for_coverage(self, fraction: float) -> int:
        """Minimum number of hottest rows covering ``fraction`` of accesses."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if fraction == 0.0 or self.total == 0:
            return 0
        rows = int(np.searchsorted(self._cum_fraction, fraction, side="left")) + 1
        return min(rows, self.live_rows)

    def fractional_rows_for_coverage(self, fraction: float) -> float:
        """Continuous-relaxation row count covering ``fraction`` of accesses.

        Interpolates within the marginal row: covering half of row *k*'s
        access mass costs half a row.  Unlike the integer version this
        function is exactly convex in ``fraction`` (marginal rows per
        unit of coverage, ``1 / count_k``, never decreases), which the
        convex MILP formulation requires of its sampled points.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if fraction == 0.0 or self.total == 0:
            return 0.0
        k = int(np.searchsorted(self._cum_fraction, fraction, side="left"))
        if k >= self.live_rows:
            return float(self.live_rows)
        prev_cum = self._cum_fraction[k - 1] if k > 0 else 0.0
        row_mass = self._cum_fraction[k] - prev_cum
        partial = (fraction - prev_cum) / row_mass if row_mass > 0 else 1.0
        return float(k + partial)

    def fractional_rows_for_coverage_many(
        self, fractions: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`fractional_rows_for_coverage`.

        Runs the same searchsorted + within-row interpolation for a
        whole grid of coverage fractions at once, producing bit-identical
        values to the scalar method (the planner workspace relies on
        this to build ICDF grids without the per-point Python loop).
        """
        fractions = np.asarray(fractions, dtype=np.float64)
        if not np.all((fractions >= 0.0) & (fractions <= 1.0)):
            raise ValueError("fractions must be in [0, 1]")
        if self.total == 0 or self.hash_size == 0:
            return np.zeros(fractions.shape, dtype=np.float64)
        cum = self._cum_fraction
        k = np.searchsorted(cum, fractions, side="left")
        # cum[-1] == 1.0 >= every query, so k < hash_size always; the
        # clip only guards the k == 0 gather for prev_cum.
        prev_cum = np.where(k > 0, cum[np.maximum(k - 1, 0)], 0.0)
        row_mass = cum[k] - prev_cum
        with np.errstate(divide="ignore", invalid="ignore"):
            partial = np.where(
                row_mass > 0, (fractions - prev_cum) / row_mass, 1.0
            )
        rows = k + partial
        rows = np.where(k >= self.live_rows, float(self.live_rows), rows)
        return np.where(fractions == 0.0, 0.0, rows)

    def icdf_points(self, steps: int = 100) -> "PiecewiseICDF":
        """The paper's piecewise ICDF: ``steps + 1`` uniformly spaced
        coverage fractions and the (fractional) rows needed for each
        (Constraints 4-7).  Fractional rows keep the sampled points in
        exactly convex position; consumers round up when materializing a
        split.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        fractions = np.linspace(0.0, 1.0, steps + 1)
        rows = np.array(
            [self.fractional_rows_for_coverage(f) for f in fractions],
            dtype=np.float64,
        )
        return PiecewiseICDF(fractions=fractions, rows=rows)

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(row fraction, access fraction) pairs for plotting (Figure 5)."""
        if self.hash_size == 0 or self.total == 0:
            return np.array([0.0, 1.0]), np.array([0.0, 0.0])
        idx = np.unique(
            np.linspace(0, self.hash_size - 1, min(points, self.hash_size)).astype(int)
        )
        return (idx + 1) / self.hash_size, self._cum_fraction[idx]

    def top_rows(self, rows: int) -> np.ndarray:
        """Row ids of the hottest ``rows`` rows (the HBM candidates)."""
        return self.row_order[: max(0, rows)]


@dataclass(frozen=True)
class PiecewiseICDF:
    """Sampled ICDF points: coverage fractions and rows required."""

    fractions: np.ndarray
    rows: np.ndarray

    def __post_init__(self):
        if self.fractions.shape != self.rows.shape:
            raise ValueError("fractions and rows must align")
        if np.any(np.diff(self.fractions) <= 0):
            raise ValueError("fractions must be strictly increasing")
        if np.any(np.diff(self.rows) < -1e-9):
            raise ValueError("rows must be non-decreasing (ICDF property)")

    @property
    def steps(self) -> int:
        return self.fractions.size - 1

    def convex_cuts(self) -> list[tuple[float, float]]:
        """Linear cuts ``rows >= slope * fraction + intercept``.

        The sampled points are in convex position (rows per unit coverage
        is non-decreasing), so every chord between consecutive points is a
        global under-estimator of the piecewise-linear interpolation, and
        the maximum over all chords *equals* it.  These cuts therefore
        encode the ICDF exactly (up to sampling) without binaries.
        """
        cuts: list[tuple[float, float]] = []
        for i in range(self.steps):
            x0, x1 = float(self.fractions[i]), float(self.fractions[i + 1])
            y0, y1 = float(self.rows[i]), float(self.rows[i + 1])
            slope = (y1 - y0) / (x1 - x0)
            cuts.append((slope, y0 - slope * x0))
        # Drop dominated duplicates (equal-slope segments from flat regions).
        deduped: list[tuple[float, float]] = []
        for slope, intercept in cuts:
            if deduped and abs(deduped[-1][0] - slope) < 1e-12:
                continue
            deduped.append((slope, intercept))
        return deduped

    def interpolate_rows(self, fraction: float) -> float:
        """Piecewise-linear rows estimate at ``fraction``."""
        return float(np.interp(fraction, self.fractions, self.rows))
