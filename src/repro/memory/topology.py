"""System topology: homogeneous devices over an ordered tier hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.memory.precision import parse_precisions_spec
from repro.memory.tier import MemoryTier


@dataclass(frozen=True)
class SystemTopology:
    """A training node: ``num_devices`` GPUs, each seeing the same tiers.

    Tiers are ordered fastest first.  The first tier is device-local
    (HBM); subsequent tiers are host-side but capacity-sliced per device,
    mirroring the paper's per-GPU ``CapD`` / ``CapH`` accounting, which
    keeps the sharding assignment abstract over physical GPUs.
    """

    num_devices: int
    tiers: tuple[MemoryTier, ...]

    def __post_init__(self):
        if self.num_devices < 1:
            raise ValueError("need at least one device")
        if len(self.tiers) < 1:
            raise ValueError("need at least one memory tier")
        bandwidths = [t.bandwidth for t in self.tiers]
        if any(b1 < b2 for b1, b2 in zip(bandwidths, bandwidths[1:])):
            raise ValueError("tiers must be ordered fastest (highest bandwidth) first")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            # Metrics, reports, and tier lookups key tiers by name; a
            # duplicate would silently collapse two tiers' accounting.
            raise ValueError(f"tier names must be unique, got {names}")

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    @property
    def tier_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    @property
    def tier_precisions(self) -> tuple[str, ...]:
        """Per-tier storage precision, fastest tier first."""
        return tuple(t.precision for t in self.tiers)

    def with_precisions(self, spec) -> "SystemTopology":
        """A copy of this topology with per-tier precisions applied.

        ``spec`` is a tier->precision mapping or a
        ``"hbm=fp32,dram=fp16,ssd=int8"`` string (see
        :func:`~repro.memory.precision.parse_precisions_spec`).  Tiers
        not named keep their current precision; naming a tier this
        topology does not have is an error.
        """
        mapping = parse_precisions_spec(spec)
        unknown = set(mapping) - set(self.tier_names)
        if unknown:
            raise ValueError(
                f"no tier named {sorted(unknown)} "
                f"(have {list(self.tier_names)})"
            )
        tiers = tuple(
            replace(t, precision=mapping.get(t.name, t.precision))
            for t in self.tiers
        )
        return SystemTopology(num_devices=self.num_devices, tiers=tiers)

    @property
    def hbm(self) -> MemoryTier:
        """The fastest (device-local) tier."""
        return self.tiers[0]

    @property
    def uvm(self) -> MemoryTier:
        """The second tier (host DRAM via UVM) in the two-tier setting."""
        if len(self.tiers) < 2:
            raise ValueError("topology has no UVM tier")
        return self.tiers[1]

    def tier(self, name: str) -> MemoryTier:
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(f"no tier named {name!r} (have {self.tier_names})")

    def total_capacity_bytes(self, tier_index: int = 0) -> int:
        """Aggregate capacity of one tier across all devices."""
        return self.tiers[tier_index].capacity_bytes * self.num_devices

    @classmethod
    def two_tier(
        cls,
        num_devices: int,
        hbm_capacity: int,
        hbm_bandwidth: float,
        uvm_capacity: int,
        uvm_bandwidth: float,
    ) -> "SystemTopology":
        """Convenience constructor for the paper's HBM + UVM hierarchy."""
        return cls(
            num_devices=num_devices,
            tiers=(
                MemoryTier("hbm", hbm_capacity, hbm_bandwidth),
                MemoryTier("uvm", uvm_capacity, uvm_bandwidth),
            ),
        )
