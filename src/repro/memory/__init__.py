"""Tiered memory system model.

Stands in for the paper's training node: per-GPU HBM plus host DRAM
reached through UVM (and optionally further tiers, Section 4.4).  The
model captures what the sharding problem needs — per-tier capacity and
effective bandwidth per device.
"""

from repro.memory.precision import (
    PRECISIONS,
    parse_precisions_spec,
    quantized_row_bytes,
)
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology
from repro.memory.presets import (
    GIB,
    TIER_LADDER,
    TIER_PRESETS,
    node_from_tier_names,
    paper_node,
    paper_scales,
    three_tier_node,
    tier_ladder_node,
)

__all__ = [
    "GIB",
    "MemoryTier",
    "PRECISIONS",
    "SystemTopology",
    "TIER_LADDER",
    "TIER_PRESETS",
    "node_from_tier_names",
    "paper_node",
    "paper_scales",
    "parse_precisions_spec",
    "quantized_row_bytes",
    "three_tier_node",
    "tier_ladder_node",
]
