"""Per-tier storage precision: the quantized-capacity axis.

RecShard's byte budgets decide where rows live; storing cold tiers at
reduced precision multiplies those budgets.  A tier's ``precision``
names the storage format of every embedding row it holds:

============  ====================  =======================
precision     bits per element      per-row overhead (bytes)
============  ====================  =======================
``fp32``      32                    0
``fp16``      16                    0
``int8``      8                     4 (one fp32 scale)
``int4``      4                     4 (one fp32 scale)
============  ====================  =======================

The integer formats are symmetric per-row affine codecs (see
:mod:`repro.core.quantize`): each row stores its elements as signed
integers plus one fp32 scale, so the byte cost of a ``dim``-element row
is ``ceil(dim * bits / 8) + overhead``.  ``fp32`` is the identity — its
row bytes are returned unchanged, which keeps every default-precision
plan bit-identical to the pre-precision planner.

This module is a leaf (no repro imports) so :mod:`repro.memory.tier`
can use it without cycles; the actual codecs live in
:mod:`repro.core.quantize`.
"""

from __future__ import annotations

#: precision name -> (bits per element, per-row overhead bytes).
PRECISIONS: dict[str, tuple[int, int]] = {
    "fp32": (32, 0),
    "fp16": (16, 0),
    "int8": (8, 4),
    "int4": (4, 4),
}

DEFAULT_PRECISION = "fp32"


def validate_precision(name: str) -> str:
    """Return ``name`` if it is a known precision, else raise."""
    if name not in PRECISIONS:
        raise ValueError(
            f"unknown precision {name!r} (have {sorted(PRECISIONS)})"
        )
    return name


def quantized_row_bytes(
    row_bytes: int, precision: str, elem_bytes: int = 4
) -> int:
    """Bytes one embedding row occupies when stored at ``precision``.

    ``row_bytes`` is the row's full-precision footprint and
    ``elem_bytes`` its full-precision element width (4 for the fp32
    tables every workload here uses), so ``row_bytes // elem_bytes`` is
    the element count.  ``fp32`` short-circuits to ``row_bytes``
    unchanged — the identity guarantee default-precision plans rely on.
    """
    bits, overhead = PRECISIONS[validate_precision(precision)]
    if precision == DEFAULT_PRECISION:
        return int(row_bytes)
    dim = int(row_bytes) // int(elem_bytes)
    return (dim * bits + 7) // 8 + overhead


def parse_precisions_spec(spec) -> dict[str, str]:
    """Parse ``"hbm=fp32,dram=fp16,ssd=int8"`` into a tier->precision map.

    Accepts a mapping (validated and returned as a plain dict) or a
    comma-separated string of ``tier=precision`` terms.  Precision
    names are validated here; tier names are validated against an
    actual topology by
    :meth:`~repro.memory.topology.SystemTopology.with_precisions`.
    """
    if isinstance(spec, dict):
        items = list(spec.items())
    else:
        items = []
        for term in str(spec).split(","):
            term = term.strip()
            if not term:
                continue
            name, sep, precision = term.partition("=")
            if not sep or not name or not precision:
                raise ValueError(
                    f"bad precision term {term!r}: expected "
                    f"tier=precision (e.g. dram=fp16)"
                )
            items.append((name.strip(), precision.strip()))
    if not items:
        raise ValueError("empty precision spec")
    mapping: dict[str, str] = {}
    for name, precision in items:
        if name in mapping:
            raise ValueError(f"tier {name!r} assigned a precision twice")
        mapping[name] = validate_precision(precision)
    return mapping
