"""A single memory tier: capacity, effective bandwidth, and precision."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.precision import (
    DEFAULT_PRECISION,
    quantized_row_bytes,
    validate_precision,
)


@dataclass(frozen=True)
class MemoryTier:
    """One level of the memory hierarchy, as seen from the accessing GPU.

    Attributes:
        name: tier label ("hbm", "uvm", "ssd", ...).
        capacity_bytes: bytes available to embedding rows on this tier
            (per device for device tiers; the per-device slice for host
            tiers, matching the paper's per-GPU ``CapH``).
        bandwidth: effective bytes/second for embedding-gather traffic.
            This is the *achieved* random-gather bandwidth, not the
            datasheet peak (see ``repro.memory.presets``).
        precision: storage format of rows resident on this tier
            (:data:`~repro.memory.precision.PRECISIONS`).  Scales the
            planner's byte accounting only — ``fp32`` (the default) is
            the exact pre-precision behavior.
    """

    name: str
    capacity_bytes: int
    bandwidth: float
    precision: str = DEFAULT_PRECISION

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ValueError(f"{self.name}: capacity must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be > 0")
        validate_precision(self.precision)

    def row_bytes_for(self, row_bytes: int, elem_bytes: int = 4) -> int:
        """Bytes one ``row_bytes``-sized row occupies on this tier."""
        return quantized_row_bytes(
            row_bytes, self.precision, elem_bytes=elem_bytes
        )

    def seconds_for_bytes(self, num_bytes: float) -> float:
        """Transfer-time estimate for ``num_bytes`` of gather traffic."""
        return num_bytes / self.bandwidth

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / 2**30
