"""Preset topologies matching the paper's training system (Section 5.2).

The evaluation node is a two-socket server with 16x NVIDIA A100 (40 GB),
24 GB of HBM reserved for EMBs per GPU, 128 GB of host DRAM per GPU for
UVM EMBs, and UVM over PCIe 3.0x16.

Bandwidths here are *effective gather* bandwidths rather than datasheet
peaks: embedding lookups are random ~256 B gathers, which achieve a
fraction of peak on HBM (no coalescing) and suffer page-granularity
overheads over UVM.  The defaults give an HBM:UVM per-row cost ratio of
~20x, which reconciles the paper's measured iteration times (Tables 3
and 5 jointly imply an effective ratio in the 15-20x range, not the
~120x ratio of the datasheet peaks).  Absolute times in this repo are
simulated; ratios are what carry.
"""

from __future__ import annotations

from repro.data.model import DEFAULT_ROW_SCALE
from repro.memory.tier import MemoryTier
from repro.memory.topology import SystemTopology

GIB = 2**30

# Paper system constants (per GPU).
PAPER_HBM_RESERVED_BYTES = 24 * GIB
PAPER_HOST_DRAM_BYTES = 128 * GIB
# Effective random-gather bandwidths (see module docstring).
HBM_GATHER_BANDWIDTH = 256e9
UVM_GATHER_BANDWIDTH = 12.8e9
SSD_GATHER_BANDWIDTH = 1.6e9
HDD_GATHER_BANDWIDTH = 0.2e9

#: Named tier presets: unscaled per-GPU capacity and effective gather
#: bandwidth.  "dram" is the host-DRAM tier under its serving-side name
#: ("uvm" is the same memory reached through UVM during training).
TIER_PRESETS = {
    "hbm": (PAPER_HBM_RESERVED_BYTES, HBM_GATHER_BANDWIDTH),
    "uvm": (PAPER_HOST_DRAM_BYTES, UVM_GATHER_BANDWIDTH),
    "dram": (PAPER_HOST_DRAM_BYTES, UVM_GATHER_BANDWIDTH),
    "ssd": (1024 * GIB, SSD_GATHER_BANDWIDTH),
    "hdd": (8192 * GIB, HDD_GATHER_BANDWIDTH),
}

#: Canonical fastest-first tier ladder for tier-count sweeps: a
#: ``T``-tier topology is the first ``T`` rungs.
TIER_LADDER = ("hbm", "uvm", "ssd", "hdd")


def paper_scales(num_features: int, num_gpus: int) -> tuple[float, float]:
    """Capacity scales preserving the paper's sharding-pressure regimes.

    Returns ``(topology_scale, row_scale)`` for a shrunken world of
    ``num_features`` sparse features on ``num_gpus`` GPUs: tier
    capacities shrink with the feature count, and per-table rows
    additionally shrink with the GPU count, so RM1 still fits in HBM
    while RM2/RM3 still spill — regardless of how far the workload is
    scaled down.  Used by the CLI and the benchmark fixtures so both
    build the same world for the same knobs.
    """
    topology_scale = 1e-3 * num_features / 397
    row_scale = topology_scale * num_gpus / 16
    return topology_scale, row_scale


def paper_node(
    num_gpus: int = 16,
    scale: float = DEFAULT_ROW_SCALE,
    hbm_bandwidth: float = HBM_GATHER_BANDWIDTH,
    uvm_bandwidth: float = UVM_GATHER_BANDWIDTH,
) -> SystemTopology:
    """The paper's 16-GPU evaluation node, capacity-scaled by ``scale``.

    ``scale`` must match the ``row_scale`` used to build the model specs
    so that the sharding-pressure regimes (RM1 fits, RM2/RM3 spill) are
    preserved.
    """
    return SystemTopology.two_tier(
        num_devices=num_gpus,
        hbm_capacity=int(PAPER_HBM_RESERVED_BYTES * scale),
        hbm_bandwidth=hbm_bandwidth,
        uvm_capacity=int(PAPER_HOST_DRAM_BYTES * scale),
        uvm_bandwidth=uvm_bandwidth,
    )


def node_from_tier_names(
    specs,
    num_gpus: int = 16,
    scale: float = DEFAULT_ROW_SCALE,
) -> SystemTopology:
    """Build a topology from tier names, fastest first.

    Each spec is a preset name from :data:`TIER_PRESETS` or
    ``name:GiB`` overriding the preset's per-GPU capacity (e.g.
    ``"dram:8"`` — an 8 GiB host-DRAM slice, the knob that creates
    genuine multi-tier pressure in shrunken worlds).  Capacities scale
    by ``scale`` like every other preset constructor; this is what
    ``repro serve --tiers hbm,dram,ssd`` builds.

    Args:
        specs: iterable of tier specs, or one comma-separated string.
        num_gpus: device count.
        scale: capacity scale (must match the model's ``row_scale``).
    """
    if isinstance(specs, str):
        specs = [s.strip() for s in specs.split(",") if s.strip()]
    if not specs:
        raise ValueError("need at least one tier name")
    tiers = []
    for spec in specs:
        name, _, cap = spec.partition(":")
        if name not in TIER_PRESETS:
            raise ValueError(
                f"unknown tier {name!r} (have {sorted(TIER_PRESETS)})"
            )
        capacity_bytes, bandwidth = TIER_PRESETS[name]
        if cap:
            capacity_bytes = int(float(cap) * GIB)
        tiers.append(
            MemoryTier(name, int(capacity_bytes * scale), bandwidth)
        )
    return SystemTopology(num_devices=num_gpus, tiers=tuple(tiers))


def tier_ladder_node(
    num_tiers: int,
    num_gpus: int = 16,
    scale: float = DEFAULT_ROW_SCALE,
) -> SystemTopology:
    """The first ``num_tiers`` rungs of :data:`TIER_LADDER` as a node —
    the grid points of a tier-count sweep (Section 4.4's capacity
    scaling study)."""
    if not 1 <= num_tiers <= len(TIER_LADDER):
        raise ValueError(
            f"num_tiers must be in [1, {len(TIER_LADDER)}], got {num_tiers}"
        )
    return node_from_tier_names(
        TIER_LADDER[:num_tiers], num_gpus=num_gpus, scale=scale
    )


def three_tier_node(
    num_gpus: int = 4,
    scale: float = DEFAULT_ROW_SCALE,
    ssd_capacity_gib: float = 1024,
) -> SystemTopology:
    """A three-tier HBM/DRAM/SSD hierarchy for the Section 4.4 extension."""
    return SystemTopology(
        num_devices=num_gpus,
        tiers=(
            MemoryTier(
                "hbm", int(PAPER_HBM_RESERVED_BYTES * scale), HBM_GATHER_BANDWIDTH
            ),
            MemoryTier("uvm", int(PAPER_HOST_DRAM_BYTES * scale), UVM_GATHER_BANDWIDTH),
            MemoryTier(
                "ssd", int(ssd_capacity_gib * GIB * scale), SSD_GATHER_BANDWIDTH
            ),
        ),
    )
