"""Birthday-paradox analytics for embedding hashing (Figures 7 and 8).

Hashing ``N`` distinct values into ``H`` slots leaves slots empty and
values colliding.  These helpers compute both the analytic expectations
(random hashing) and empirical measurements with a concrete hasher, which
the benchmarks compare side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def expected_occupancy(num_values: int, hash_size: int) -> float:
    """Expected fraction of hash slots occupied under random hashing.

    Exactly ``1 - (1 - 1/H)^N``, which tends to ``1 - exp(-N/H)``.  At
    ``H == N`` this is ``1 - 1/e ~= 0.632`` — the paper's observation
    that ~1/e of slots go unused when the hash size equals the number of
    unique inputs.
    """
    if num_values < 0 or hash_size < 1:
        raise ValueError("need num_values >= 0 and hash_size >= 1")
    return float(-np.expm1(num_values * np.log1p(-1.0 / hash_size)))


def collision_fraction(num_values: int, hash_size: int) -> float:
    """Expected fraction of distinct input values that collide.

    A value "collides" when it shares a slot with another distinct value;
    equivalently ``1 - occupied_slots / N`` counts the values beyond the
    first in each occupied slot.
    """
    if num_values < 1:
        return 0.0
    occupied = expected_occupancy(num_values, hash_size) * hash_size
    return float(max(0.0, 1.0 - occupied / num_values))


def measure_occupancy(num_values: int, hash_size: int, hasher) -> int:
    """Number of slots actually occupied when hashing ``0..N-1``."""
    hashed = hasher.hash_into(np.arange(num_values, dtype=np.int64), hash_size)
    return int(np.unique(hashed).size)


@dataclass(frozen=True)
class BirthdaySweepPoint:
    """One point of the Figure 8 sweep."""

    multiple: float  # hash size as a multiple of input cardinality
    hash_size: int
    usage: float  # fraction of slots occupied
    collisions: float  # fraction of values colliding
    sparsity: float  # 1 - usage

    @property
    def as_row(self) -> tuple[float, float, float, float]:
        return (self.multiple, self.usage, self.collisions, self.sparsity)


def birthday_sweep(
    num_values: int,
    multiples,
    hasher=None,
) -> list[BirthdaySweepPoint]:
    """Sweep hash size as a multiple of cardinality (Figure 8).

    With ``hasher=None`` the analytic expectations are returned; with a
    concrete hasher the fractions are measured empirically.
    """
    points = []
    for multiple in multiples:
        hash_size = max(1, int(round(num_values * float(multiple))))
        if hasher is None:
            usage = expected_occupancy(num_values, hash_size)
            collide = collision_fraction(num_values, hash_size)
        else:
            occupied = measure_occupancy(num_values, hash_size, hasher)
            usage = occupied / hash_size
            collide = max(0.0, 1.0 - occupied / num_values)
        points.append(
            BirthdaySweepPoint(
                multiple=float(multiple),
                hash_size=hash_size,
                usage=usage,
                collisions=collide,
                sparsity=1.0 - usage,
            )
        )
    return points


@dataclass(frozen=True)
class HashCompressionProfile:
    """Pre- vs post-hash frequency profile of one feature (Figure 7).

    Attributes:
        pre_hash_counts: per-value access counts, descending.
        post_hash_counts: per-row access counts post-hash, descending.
        hash_size: table row count.
        unique_values_seen: distinct raw values observed.
        occupied_rows: rows receiving at least one access.
        sparsity_pct: fraction of the table unused because the observed
            value space is smaller than the hash space.
        collision_pct: additional fraction lost to hash collisions
            (values folded together relative to a 1:1 mapping).
    """

    pre_hash_counts: np.ndarray
    post_hash_counts: np.ndarray
    hash_size: int
    unique_values_seen: int
    occupied_rows: int

    @property
    def sparsity_pct(self) -> float:
        return 1.0 - self.unique_values_seen / self.hash_size

    @property
    def collision_pct(self) -> float:
        return (self.unique_values_seen - self.occupied_rows) / self.hash_size

    @property
    def unused_pct(self) -> float:
        """Total unused fraction of the table (sparsity + collisions)."""
        return 1.0 - self.occupied_rows / self.hash_size


def hash_compression_profile(
    raw_values: np.ndarray, hash_size: int, hasher
) -> HashCompressionProfile:
    """Measure how hashing compresses a raw value distribution (Figure 7)."""
    raw_values = np.asarray(raw_values, dtype=np.int64)
    unique_vals, pre_counts = np.unique(raw_values, return_counts=True)
    hashed = hasher.hash_into(raw_values, hash_size)
    _, post_counts = np.unique(hashed, return_counts=True)
    return HashCompressionProfile(
        pre_hash_counts=np.sort(pre_counts)[::-1],
        post_hash_counts=np.sort(post_counts)[::-1],
        hash_size=int(hash_size),
        unique_values_seen=int(unique_vals.size),
        occupied_rows=int(post_counts.size),
    )
