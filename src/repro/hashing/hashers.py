"""Deterministic integer hash functions over numpy arrays.

All hashers share one interface: ``hash_into(values, size)`` maps an
int64 array into ``[0, size)``.  They are pure functions of the value and
the seed, so a feature's hash mapping is stable across profiling,
sharding, and execution — the property the remapping layer relies on.
"""

from __future__ import annotations

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


class SplitMix64Hasher:
    """SplitMix64 finalizer hash — strong avalanche, the default hasher."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def hash64(self, values: np.ndarray) -> np.ndarray:
        """Mix values to 64-bit hashes (before range reduction)."""
        x = values.astype(np.uint64, copy=True)
        with np.errstate(over="ignore"):
            x += np.uint64((self.seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
            x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            x &= _MASK64
            x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            x &= _MASK64
            x ^= x >> np.uint64(31)
        return x

    def hash_into(self, values: np.ndarray, size: int) -> np.ndarray:
        if size < 1:
            raise ValueError(f"hash size must be >= 1, got {size}")
        return (self.hash64(np.asarray(values)) % np.uint64(size)).astype(np.int64)

    def __repr__(self) -> str:
        return f"SplitMix64Hasher(seed={self.seed})"


class MultiplyShiftHasher:
    """Classic multiply-shift universal hashing (Dietzfelbinger et al.).

    Weaker mixing than SplitMix64 but cheaper; kept as an alternative to
    show that RecShard's statistics are hash-function agnostic.
    """

    # Large odd multipliers derived from the golden ratio and e.
    _MULTIPLIERS = (0x9E3779B97F4A7C15, 0xADB85EA5D72D8C2B)

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._a = np.uint64(self._MULTIPLIERS[self.seed % 2] | 1)
        self._b = np.uint64(
            (self.seed * 0x5851F42D4C957F2D + 0x14057B7EF767814F)
            & 0xFFFFFFFFFFFFFFFF
        )

    def hash64(self, values: np.ndarray) -> np.ndarray:
        x = values.astype(np.uint64, copy=False)
        with np.errstate(over="ignore"):
            return (x * self._a + self._b) & _MASK64

    def hash_into(self, values: np.ndarray, size: int) -> np.ndarray:
        if size < 1:
            raise ValueError(f"hash size must be >= 1, got {size}")
        # Use the high bits, which carry the most mixing in multiply-shift.
        scaled = self.hash64(np.asarray(values)) >> np.uint64(32)
        return ((scaled * np.uint64(size)) >> np.uint64(32)).astype(np.int64)

    def __repr__(self) -> str:
        return f"MultiplyShiftHasher(seed={self.seed})"


class IdentityHasher:
    """No hashing: value modulo size.

    Lets experiments compare hashed tables against the hypothetical 1:1
    mapping (the pre-hash curve in Figure 7).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def hash64(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values).astype(np.uint64, copy=False)

    def hash_into(self, values: np.ndarray, size: int) -> np.ndarray:
        if size < 1:
            raise ValueError(f"hash size must be >= 1, got {size}")
        return (np.asarray(values, dtype=np.int64) % size).astype(np.int64)

    def __repr__(self) -> str:
        return "IdentityHasher()"
