"""Feature hashing substrate.

In modern DLRMs embedding tables function as hash tables (Section 3.4):
raw categorical values are hashed into a fixed-size row space, which
bounds table size and handles unseen values but causes collisions and
dead rows (the birthday paradox, Figures 7 and 8).
"""

from repro.hashing.hashers import (
    IdentityHasher,
    MultiplyShiftHasher,
    SplitMix64Hasher,
)
from repro.hashing.collisions import (
    birthday_sweep,
    collision_fraction,
    expected_occupancy,
    hash_compression_profile,
    measure_occupancy,
)

__all__ = [
    "IdentityHasher",
    "MultiplyShiftHasher",
    "SplitMix64Hasher",
    "birthday_sweep",
    "collision_fraction",
    "expected_occupancy",
    "hash_compression_profile",
    "measure_occupancy",
]
