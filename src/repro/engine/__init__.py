"""Trace-driven sharded embedding execution engine.

Stands in for the paper's 16x A100 node plus FBGEMM kernels: replays
embedding lookup traces against a sharding plan, counts per-tier
accesses, and charges each access with the tiered bandwidth model the
paper's MILP uses (and validates on hardware).  Produces the per-GPU
per-iteration EMB times and access counts of Tables 3 and 5.
"""

from repro.engine.cache import (
    CacheModel,
    TierStagingModel,
    cached_rows_per_table,
    staged_rows_per_table,
)
from repro.engine.executor import (
    ShardedExecutor,
    least_loaded_counts,
    replay_trace,
)
from repro.engine.lanes import Lane, LaneRegistry, build_lanes
from repro.engine.metrics import IterationStats, RunMetrics
from repro.engine.ranked import RankedBatch, RankedFeature, RankRemapper
from repro.engine.harness import (
    ExperimentResult,
    compare_strategies,
    run_experiment,
)

__all__ = [
    "CacheModel",
    "ExperimentResult",
    "IterationStats",
    "Lane",
    "LaneRegistry",
    "RankRemapper",
    "RankedBatch",
    "RankedFeature",
    "RunMetrics",
    "ShardedExecutor",
    "TierStagingModel",
    "build_lanes",
    "cached_rows_per_table",
    "staged_rows_per_table",
    "compare_strategies",
    "least_loaded_counts",
    "replay_trace",
    "run_experiment",
]
