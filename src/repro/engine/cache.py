"""An optional GPU cache model for the execution engine.

The paper's Table 3 shows RecShard improving RM1's *mean* per-GPU time
even though RM1 fits entirely in HBM — impossible under a purely
additive bandwidth model, where identical total traffic implies
identical mean time. The gain comes from locality: each GPU's cache
(L2) retains its hottest embedding rows, and a GPU serving a compact,
well-chosen working set hits cache far more often than one serving a
sprawling one.

This module models that effect at the same level of abstraction as the
rest of the engine: per device, the expectedly-hottest HBM-resident
rows up to the cache capacity are served at cache bandwidth instead of
HBM bandwidth. Because RecShard's remapping packs each table's hottest
rows first, "expectedly hottest" is simply a per-table rank threshold.

The model is off by default; `bench_ablation_cache.py` quantifies its
effect on the RM1 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheModel:
    """Device cache parameters.

    Attributes:
        capacity_bytes: cache bytes available for embedding rows per
            device (A100: 40 MB L2; scale it like the other capacities).
        bandwidth: effective bytes/second for cache hits.
    """

    capacity_bytes: int
    bandwidth: float

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("cache bandwidth must be > 0")


def cached_rows_per_table(
    cache: CacheModel,
    plan,
    profile,
    model,
    device: int,
) -> dict[int, int]:
    """How many leading (hottest) HBM rows of each table fit the cache.

    Greedy by expected per-row access count across all tables assigned
    to ``device``: exactly the steady-state content of an LRU cache
    under independent reference draws. Only HBM-resident rows compete
    (UVM reads stream through without useful reuse at this granularity).

    Returns {table_index: cached row count}; tables absent from the
    device are omitted.
    """
    members = [p for p in plan if p.device == device]
    if not members or cache.capacity_bytes <= 0:
        return {p.table_index: 0 for p in members}

    counts_list = []
    owner_list = []
    bytes_list = []
    for placement in members:
        stats = profile[placement.table_index]
        hbm_rows = placement.rows_per_tier[0]
        if hbm_rows == 0 or stats.total_accesses <= 0:
            continue
        # Ranked (descending) expected counts of the HBM-resident rows.
        ranked = stats.counts[stats.cdf.row_order[:hbm_rows]]
        counts_list.append(ranked)
        owner_list.append(
            np.full(ranked.size, placement.table_index, dtype=np.int64)
        )
        bytes_list.append(
            np.full(
                ranked.size,
                model.tables[placement.table_index].row_bytes,
                dtype=np.int64,
            )
        )
    cached = {p.table_index: 0 for p in members}
    if not counts_list:
        return cached

    counts = np.concatenate(counts_list)
    owners = np.concatenate(owner_list)
    row_bytes = np.concatenate(bytes_list)
    order = np.argsort(-counts, kind="stable")
    cum_bytes = np.cumsum(row_bytes[order])
    take = int(np.searchsorted(cum_bytes, cache.capacity_bytes, side="right"))
    if take == 0:
        return cached
    chosen_owners = owners[order[:take]]
    for table_index, num in zip(*np.unique(chosen_owners, return_counts=True)):
        cached[int(table_index)] = int(num)
    return cached
