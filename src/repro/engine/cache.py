"""Frequency-informed caching/staging models for the execution engine.

Two levels of the same idea — serve statically-predicted-hot rows from
a faster lane than their home tier — at the same level of abstraction
as the rest of the engine:

* :class:`CacheModel` — the paper's Table 3 locality effect.  RM1's
  *mean* per-GPU time improves under RecShard even though RM1 fits
  entirely in HBM, impossible under a purely additive bandwidth model.
  The gain comes from each GPU's cache (L2) retaining its hottest
  embedding rows; per device, the expectedly-hottest HBM-resident rows
  up to the cache capacity are served at cache bandwidth instead of
  HBM bandwidth.
* :class:`TierStagingModel` — the Section 4.4 capacity-scaling
  counterpart for hierarchies deeper than HBM+UVM.  Each cold tier's
  statically-hottest resident rows (the leading rows of every table's
  tier block, by construction of the frequency-ordered split) are
  staged into a per-device buffer carved out of the next-faster tier
  and served at *that* tier's bandwidth.  This is RecShard's
  "statistics beat reactive caching" claim made runnable: the rows a
  steady-state LRU would converge to under independent draws are known
  up front from the profiled CDF, so the staging set is computed once
  per plan install instead of being discovered by misses (the
  RecSSD/RecNMP observation that cold-tier lookups dominate inference
  latency unless hot rows are staged in faster memory).

Because RecShard's remapping packs each table's hottest rows first,
"expectedly hottest" is simply a per-(table, tier) rank threshold in
both models.  Both are off by default; ``bench_ablation_cache.py``
quantifies the cache's effect on the RM1 comparison and
``bench_serving_multitier.py`` exercises staging on a three-tier
serving topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheModel:
    """Device cache parameters.

    Attributes:
        capacity_bytes: cache bytes available for embedding rows per
            device (A100: 40 MB L2; scale it like the other capacities).
        bandwidth: effective bytes/second for cache hits.
    """

    capacity_bytes: int
    bandwidth: float

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("cache bandwidth must be > 0")


@dataclass(frozen=True)
class TierStagingModel:
    """Frequency-informed staging of cold-tier rows into faster memory.

    For every cold tier ``t >= 1`` of a topology, a per-device buffer of
    ``capacity_for(t)`` bytes in tier ``t - 1`` holds the
    statically-hottest tier-``t``-resident rows of the device's tables;
    accesses to staged rows are charged at tier ``t - 1``'s bandwidth
    while still being *counted* against their home tier (staging is a
    bandwidth effect, not a placement change — Table 5 access counts
    are unaffected).

    Attributes:
        capacity_bytes: staging buffer per device per cold tier.  A
            single int applies the same budget to every cold tier; a
            tuple gives tier ``t`` the budget at index ``t - 1``
            (missing entries mean no staging for that tier).
    """

    capacity_bytes: int | tuple[int, ...]

    def __post_init__(self):
        caps = (
            self.capacity_bytes
            if isinstance(self.capacity_bytes, tuple)
            else (self.capacity_bytes,)
        )
        if any(c < 0 for c in caps):
            raise ValueError("staging capacity must be >= 0")

    def capacity_for(self, tier_index: int) -> int:
        """Staging budget (bytes/device) for cold tier ``tier_index``."""
        if tier_index < 1:
            raise ValueError("staging applies to cold tiers (index >= 1)")
        if isinstance(self.capacity_bytes, tuple):
            offset = tier_index - 1
            if offset >= len(self.capacity_bytes):
                return 0
            return int(self.capacity_bytes[offset])
        return int(self.capacity_bytes)


def staged_rows_per_table(
    staging: TierStagingModel,
    plan,
    profile,
    model,
    num_tiers: int,
    device: int,
) -> np.ndarray:
    """Per-(table, tier) counts of leading tier rows staged one tier up.

    Same greedy-by-expected-count selection as
    :func:`cached_rows_per_table`, run independently per cold tier: all
    rows resident on tier ``t`` across the device's tables compete for
    the tier's staging budget, hottest first — exactly the steady-state
    content of an LRU over that tier under independent reference draws,
    computed from statistics instead of discovered by misses.

    Returns:
        ``(num_tables, num_tiers)`` int64 array; entry ``[j, t]`` is how
        many leading rows of table ``j``'s tier-``t`` block are staged
        (column 0 is always zero — the fastest tier has nowhere faster
        to stage into; :class:`CacheModel` covers that lane).
    """
    staged = np.zeros((len(plan), num_tiers), dtype=np.int64)
    members = [p for p in plan if p.device == device]
    if not members:
        return staged
    for tier in range(1, num_tiers):
        budget = staging.capacity_for(tier)
        if budget <= 0:
            continue
        counts_list, owner_list, bytes_list = [], [], []
        for placement in members:
            stats = profile[placement.table_index]
            if stats.total_accesses <= 0:
                continue
            start = int(sum(placement.rows_per_tier[:tier]))
            stop = start + int(placement.rows_per_tier[tier])
            if stop <= start:
                continue
            # Ranked (descending) expected counts of the tier block.
            ranked = stats.counts[stats.cdf.row_order[start:stop]]
            counts_list.append(ranked)
            owner_list.append(
                np.full(ranked.size, placement.table_index, dtype=np.int64)
            )
            bytes_list.append(
                np.full(
                    ranked.size,
                    model.tables[placement.table_index].row_bytes,
                    dtype=np.int64,
                )
            )
        if not counts_list:
            continue
        counts = np.concatenate(counts_list)
        owners = np.concatenate(owner_list)
        row_bytes = np.concatenate(bytes_list)
        order = np.argsort(-counts, kind="stable")
        cum_bytes = np.cumsum(row_bytes[order])
        take = int(np.searchsorted(cum_bytes, budget, side="right"))
        if take == 0:
            continue
        chosen = owners[order[:take]]
        for table_index, num in zip(*np.unique(chosen, return_counts=True)):
            staged[int(table_index), tier] = int(num)
    return staged


def cached_rows_per_table(
    cache: CacheModel,
    plan,
    profile,
    model,
    device: int,
) -> dict[int, int]:
    """How many leading (hottest) HBM rows of each table fit the cache.

    Greedy by expected per-row access count across all tables assigned
    to ``device``: exactly the steady-state content of an LRU cache
    under independent reference draws. Only HBM-resident rows compete
    (UVM reads stream through without useful reuse at this granularity).

    Returns {table_index: cached row count}; tables absent from the
    device are omitted.
    """
    members = [p for p in plan if p.device == device]
    if not members or cache.capacity_bytes <= 0:
        return {p.table_index: 0 for p in members}

    counts_list = []
    owner_list = []
    bytes_list = []
    for placement in members:
        stats = profile[placement.table_index]
        hbm_rows = placement.rows_per_tier[0]
        if hbm_rows == 0 or stats.total_accesses <= 0:
            continue
        # Ranked (descending) expected counts of the HBM-resident rows.
        ranked = stats.counts[stats.cdf.row_order[:hbm_rows]]
        counts_list.append(ranked)
        owner_list.append(
            np.full(ranked.size, placement.table_index, dtype=np.int64)
        )
        bytes_list.append(
            np.full(
                ranked.size,
                model.tables[placement.table_index].row_bytes,
                dtype=np.int64,
            )
        )
    cached = {p.table_index: 0 for p in members}
    if not counts_list:
        return cached

    counts = np.concatenate(counts_list)
    owners = np.concatenate(owner_list)
    row_bytes = np.concatenate(bytes_list)
    order = np.argsort(-counts, kind="stable")
    cum_bytes = np.cumsum(row_bytes[order])
    take = int(np.searchsorted(cum_bytes, cache.capacity_bytes, side="right"))
    if take == 0:
        return cached
    chosen_owners = owners[order[:take]]
    for table_index, num in zip(*np.unique(chosen_owners, return_counts=True)):
        cached[int(table_index)] = int(num)
    return cached
