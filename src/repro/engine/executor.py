"""Trace-driven execution of a sharding plan.

Replays jagged training batches against a plan's remapping tables.  For
each table, each lookup index resolves to the tier hosting that row; the
per-GPU iteration time is the sum over the GPU's tables of per-tier
traffic divided by tier bandwidth — the paper's additive cost model (the
summation property discussed under "Key Properties of RecShard's MILP":
mixed HBM/UVM reads within a kernel serialize on current GPUs).

Two execution paths produce identical metrics:

* **vectorized** (default): batches are first translated to frequency
  ranks by a :class:`~repro.engine.ranked.RankRemapper` (the Section 4.3
  remapping transform, run once per trace and shared by every strategy);
  per-tier accounting then reduces to counting ranks below each plan's
  cumulative tier boundaries — a handful of SIMD threshold scans per
  table, with no per-lookup tier gather.  The device cache model
  likewise operates directly on the sorted-by-construction frequency
  ranking: a hit is simply ``rank < cached_rows``.
* **scalar** (``vectorized=False``): the per-feature reference path
  that resolves every lookup through the remapping table.  Kept as the
  ground truth the parity tests check the fast path against.  Both
  paths classify independently but share :meth:`_reduce_counts`, so
  identical classifications yield *bit-identical* device times — the
  equality the multi-tier serving bench gates on.

Both paths handle any tier count: per-tier counts are prefix
differences of the rank array against the plan's cumulative tier
boundaries, whether computed by threshold scans (ranked path), one
global ``searchsorted`` over interleaved per-table edge grids (fused
jagged path), or per-lookup remap-table gathers (scalar reference).

Two frequency-informed fast-lane models (:mod:`repro.engine.cache`) can
be layered on top:

* a :class:`~repro.engine.cache.CacheModel` serves each device's
  expectedly-hottest HBM rows at cache bandwidth, reproducing the
  locality-driven mean-time gains the paper measures on real GPUs;
* a :class:`~repro.engine.cache.TierStagingModel` serves each cold
  tier's statically-hottest resident rows at the next-faster tier's
  bandwidth (Section 4.4's capacity-scaling hierarchies made fast to
  serve).  Staged accesses stay *counted* in their home tier.

Because the remapping packs hot rows first, both reduce to per-(table,
tier) rank cutoffs that slot into the same classification passes.

A third fast lane is *replication*
(:class:`~repro.core.replicate.ReplicatedPlan`): each table's
``replica_rows`` hottest rows exist on every device, and a lookup that
resolves below that cutoff is routed to whichever device currently
carries the least served bytes instead of the table's home.  Routing is
greedy least-loaded over running per-device byte counters (ties to the
lowest device id; the counters see each batch's home-lane bytes before
its replicated lookups, in trace order).  The vectorized path computes
each feature's routed counts in closed form
(:func:`least_loaded_counts` — the greedy sequence is the ``n``
smallest pops across per-device arithmetic progressions); the scalar
path assigns lookup by lookup, and both produce bit-identical metrics.
Routed accesses are counted on the *serving* device's fastest tier, so
the per-device access totals (``RunMetrics.load_imbalance``) show the
balancing effect directly.

All of these cutoffs — tier boundaries, cache, staging, replica, and
the table-wise-row-wise strategy cuts — are *registered lanes* in a
:class:`~repro.engine.lanes.LaneRegistry` built once per executor.
Each lane is a per-table cumulative rank cutoff; classification is one
prefix count per lane, computed by the fused path (three linear passes
over the flat rank buffer) and by the scalar reference (per-feature
threshold scans / remap-table gathers).  Both feed the shared
:meth:`ShardedExecutor._reduce_counts`, so a lane registered once gets
a vectorized fast path and a bit-identical scalar reference for free.

Per-table sharding strategies
(:class:`~repro.core.strategies.StrategyPlan`) reuse the framework:
column splits change nothing at classification time (every lookup
touches every column shard) — the reduction scatters each table's
per-tier counts across its shard devices, byte traffic exact per dim
share, access counts split largest-remainder so per-table totals are
conserved; twrw splits register one ``cut`` lane per interior rank cut
and the reduction crosses cut prefixes with tier prefixes (a min/max
identity on monotone prefix counts) to land each (tier, shard) cell on
its device.  Strategy plans do not compose with cache/staging/replica
lanes (the executor rejects the combination up front).
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ShardingPlan
from repro.core.remap import RemappingTable
from repro.core.replicate import ReplicatedPlan
from repro.core.strategies import (
    StrategyPlan,
    proportional_split,
    strategy_device_costs_ms,
)
from repro.data.batch import JaggedBatch
from repro.data.model import ModelSpec
from repro.engine.cache import (
    CacheModel,
    TierStagingModel,
    cached_rows_per_table,
    staged_rows_per_table,
)
from repro.engine.lanes import LaneRegistry, build_lanes
from repro.engine.metrics import RunMetrics
from repro.engine.ranked import RankedBatch, RankRemapper
from repro.memory.topology import SystemTopology


class ShardedExecutor:
    """Executes embedding lookups for one model under one plan.

    Args:
        model: the model spec (table geometry).
        plan: the sharding plan under test.
        profile: the profile whose frequency ranking orders rows across
            tiers (the same ranking the remapping layer ships to
            production in Section 4.3).
        topology: tier capacities/bandwidths to charge against.
        validate: check plan feasibility up front (disable only for
            deliberately infeasible what-if runs).
        cache: optional per-device cache model; each device's expectedly
            hottest HBM rows are served at cache bandwidth.
        staging: optional per-device staging model; each cold tier's
            expectedly hottest resident rows are served at the
            next-faster tier's bandwidth (multi-tier hierarchies).
        vectorized: use the rank-space fast path (default).  The scalar
            path is the bit-equivalent reference implementation.
        ranker: a pre-built :class:`RankRemapper` for this profile, to
            share rank arrays across the executors of several
            strategies.  Built lazily from ``profile`` when omitted.
        replication: optional
            :class:`~repro.core.replicate.ReplicatedPlan` enabling the
            replica lane; lookups below each table's replica cutoff are
            routed least-loaded across all devices.  Passing the
            replicated plan directly as ``plan`` is equivalent.
    """

    def __init__(
        self,
        model: ModelSpec,
        plan: ShardingPlan,
        profile,
        topology: SystemTopology,
        validate: bool = True,
        cache: CacheModel | None = None,
        staging: TierStagingModel | None = None,
        vectorized: bool = True,
        ranker: RankRemapper | None = None,
        replication: ReplicatedPlan | None = None,
    ):
        strategy_plan = None
        if isinstance(plan, StrategyPlan):
            strategy_plan = plan
            plan = strategy_plan.plan
            if replication is not None:
                raise ValueError(
                    "strategy plans do not compose with replication"
                )
            if cache is not None or staging is not None:
                raise ValueError(
                    "strategy plans do not compose with cache/staging "
                    "fast lanes"
                )
        if isinstance(plan, ReplicatedPlan):
            if replication is not None and replication is not plan:
                raise ValueError(
                    "pass the ReplicatedPlan as plan= or replication=, "
                    "not two different ones"
                )
            replication = plan
            plan = plan.plan
        elif replication is not None and replication.plan is not plan:
            raise ValueError("replication= wraps a different plan")
        if validate:
            if strategy_plan is not None:
                strategy_plan.validate(model, topology)
            elif replication is not None:
                replication.validate(model, topology)
            else:
                plan.validate(model, topology)
        self.model = model
        self.plan = plan
        self.strategy_plan = strategy_plan
        self.replication = replication
        self.profile = profile
        self.topology = topology
        self.vectorized = vectorized
        self._ranker = ranker
        self._remap_tables: list[RemappingTable] | None = None
        self.device_of = np.array([p.device for p in plan], dtype=np.int64)
        self.row_bytes = np.array(
            [t.row_bytes for t in model.tables], dtype=np.float64
        )
        # Cumulative tier boundaries in rank space, shape (tables, tiers):
        # the rows of table j on tier t are ranks [bounds[j, t-1], bounds[j, t]).
        self._tier_bounds = np.array(
            [np.cumsum(p.rows_per_tier) for p in plan], dtype=np.int64
        )
        self._inv_bw = np.array(
            [1.0 / tier.bandwidth for tier in topology.tiers], dtype=np.float64
        )
        self.cache = cache
        self.staging = staging
        # Reusable comparison mask for the rank threshold scans: avoids a
        # fresh (page-faulting) bool temporary per table per batch.  Makes
        # run_ranked non-reentrant, like the executor's other scratch state.
        self._mask_scratch = np.empty(0, dtype=bool)
        # Fused jagged-path scratch (the serving loop's per-batch hot
        # path): a flat global-rank buffer reused across batches, and
        # the per-lane base-shifted edge vectors it is compared against.
        # Built lazily because both depend on the (possibly lazy) ranker.
        self._flat_rank_scratch = np.empty(0, dtype=np.int64)
        self._fused_edges: dict[str, np.ndarray] | None = None
        self._cache_threshold = np.zeros(model.num_tables, dtype=np.int64)
        if cache is not None:
            for device in range(topology.num_devices):
                for table_index, rows in cached_rows_per_table(
                    cache, plan, profile, model, device
                ).items():
                    self._cache_threshold[table_index] = rows
        # Leading rows of each (table, cold tier) block staged one tier
        # up; column 0 is always zero (CacheModel owns the HBM lane).
        self._stage_rows = np.zeros(
            (model.num_tables, topology.num_tiers), dtype=np.int64
        )
        if staging is not None:
            for device in range(topology.num_devices):
                self._stage_rows += staged_rows_per_table(
                    staging, plan, profile, model, topology.num_tiers, device
                )
        # Replica lane: ranks below a table's replica cutoff exist on
        # every device and are routed least-loaded instead of hitting
        # the home device.  The cutoff is clamped to the fastest tier's
        # boundary (validate() already guarantees containment) and the
        # running byte counters start at zero per executor.
        self._replica_cut = np.zeros(model.num_tables, dtype=np.int64)
        if replication is not None:
            self._replica_cut = np.minimum(
                replication.replica_rows, self._tier_bounds[:, 0]
            )
        self._has_replicas = bool(self._replica_cut.any())
        self._replica_cut_list = [int(c) for c in self._replica_cut]
        self._row_bytes_int = np.array(
            [t.row_bytes for t in model.tables], dtype=np.int64
        )
        self._replica_load = np.zeros(topology.num_devices, dtype=np.int64)
        # Device fault state (chaos drills): dead devices serve nothing
        # — their home-lane lookups are *dropped* (tallied per batch in
        # ``last_dropped``) and the replica router masks them out of the
        # least-loaded lane; degraded devices keep serving with their
        # batch times multiplied by a slowdown factor.
        self._device_alive = np.ones(topology.num_devices, dtype=bool)
        self._device_slowdown = np.ones(topology.num_devices, dtype=np.float64)
        self.last_dropped = np.zeros(topology.num_devices, dtype=np.int64)
        # Brownout degraded mode (overload control): while active,
        # cold-tier home-lane lookups are *skipped* — only fast-tier,
        # staged, and replicated rows are served.  Skips are tallied per
        # batch in ``last_browned`` and cumulatively per table, so the
        # quality cost of degraded service is measured, never silent.
        self._brownout = False
        self.last_browned = np.zeros(
            (topology.num_tiers, topology.num_devices), dtype=np.int64
        )
        self.browned_by_table = np.zeros(model.num_tables, dtype=np.int64)
        # Per-(table, tier) fast-lane cutoffs in cumulative rank space:
        # ranks in [bounds[t-1], cutoffs[t]) are served at the tier's
        # fast lane (cache bandwidth for tier 0, tier t-1's bandwidth
        # for cold tiers).  The cache only holds HBM-resident rows and a
        # tier's staged rows live inside its block, so every cutoff is
        # clamped into the tier's boundary interval.
        bounds = self._tier_bounds
        cutoffs = np.empty_like(bounds)
        cutoffs[:, 0] = np.minimum(self._cache_threshold, bounds[:, 0])
        if cache is not None and self._has_replicas:
            # The replica lane owns the leading ranks: cache hits only
            # count ranks in [replica_cut, cutoff).
            cutoffs[:, 0] = np.maximum(cutoffs[:, 0], self._replica_cut)
        if topology.num_tiers > 1:
            cutoffs[:, 1:] = np.minimum(
                bounds[:, :-1] + self._stage_rows[:, 1:], bounds[:, 1:]
            )
        self._tier_cutoffs = cutoffs
        # Tiers whose fast-lane cutoff sits strictly above the tier's
        # lower boundary for at least one table: only these cost the
        # fused lane an extra scan.
        lower = np.zeros_like(bounds)
        lower[:, 1:] = bounds[:, :-1]
        self._hit_tiers = tuple(
            int(t) for t in np.flatnonzero((cutoffs > lower).any(axis=0))
        )
        # Per-table strategy shards: column tables scatter their counts
        # across shard devices at reduce time; twrw tables additionally
        # register one classification lane per interior rank cut.
        self._column_tables: list[tuple] = []
        self._twrw_tables: list[tuple] = []
        self._num_cut_lanes = 0
        cut_points = None
        if strategy_plan is not None:
            self._num_cut_lanes = strategy_plan.num_cut_lanes
            if self._num_cut_lanes:
                cut_points = np.zeros(
                    (model.num_tables, self._num_cut_lanes), dtype=np.int64
                )
            for j, strat in enumerate(strategy_plan.strategies):
                if strat.kind == "column":
                    dims = np.asarray(strat.dims, dtype=np.int64)
                    self._column_tables.append((
                        j,
                        np.asarray(strat.devices, dtype=np.int64),
                        dims,
                        (dims * model.tables[j].dtype_bytes).astype(
                            np.float64
                        ),
                    ))
                elif strat.kind == "twrw":
                    cut_points[j, : len(strat.row_cuts)] = strat.row_cuts
                    self._twrw_tables.append((
                        j,
                        np.asarray(strat.devices, dtype=np.int64),
                        len(strat.row_cuts),
                    ))
        self._split_idx = np.array(
            [info[0] for info in self._column_tables]
            + [info[0] for info in self._twrw_tables],
            dtype=np.int64,
        )
        self._cut_points = cut_points
        # The lane registry: every cutoff the classification paths scan,
        # in pass order.  Registering a lane here is all it takes to get
        # the fused fast path and the scalar parity reference.
        self._lanes: LaneRegistry = build_lanes(
            self._tier_bounds,
            self._tier_cutoffs,
            self._hit_tiers,
            replica_cut=self._replica_cut if self._has_replicas else None,
            strategy_cuts=cut_points,
        )

    # ------------------------------------------------------------------
    # Lazily-built helpers
    # ------------------------------------------------------------------
    @property
    def remap_tables(self) -> list[RemappingTable]:
        """Per-table (tier, offset) remapping — the scalar path's lookup
        structure, also the production artifact of Section 4.3.  Built on
        first use; the vectorized path never needs it."""
        if self._remap_tables is None:
            self._remap_tables = [
                RemappingTable(
                    self.profile[p.table_index].cdf.row_order, p.rows_per_tier
                )
                for p in self.plan
            ]
        return self._remap_tables

    @property
    def ranker(self) -> RankRemapper:
        """The hashed-index → frequency-rank translator for this profile."""
        if self._ranker is None:
            self._ranker = RankRemapper(self.profile)
        return self._ranker

    def prepare(self, batches) -> list[RankedBatch]:
        """Translate a trace to rank space once, for repeated replay."""
        return self.ranker.rank_trace(batches)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self, batch: JaggedBatch | RankedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Execute one batch (jagged or pre-ranked).

        Returns:
            times_ms: per-device EMB time for this iteration (ms).
            accesses: (num_tiers, num_devices) access counts; cache and
                staging hits are counted within their home tier, and
                replica-routed lookups on the *serving* device's
                fastest tier.
            tier_hits: (num_tiers, num_devices) accesses served from a
                fast lane — row 0 is device-cache hits, row ``t >= 1``
                is tier-``t`` rows staged at tier ``t - 1`` bandwidth.
            replica_accesses: (num_devices,) lookups served from the
                replica lane on each device (all zeros without a
                :class:`~repro.core.replicate.ReplicatedPlan`).
        """
        if isinstance(batch, RankedBatch):
            if not self.vectorized:
                raise ValueError(
                    "scalar executor cannot consume pre-ranked batches; "
                    "pass jagged batches or use vectorized=True"
                )
            return self.run_ranked(batch)
        if self.vectorized:
            return self.run_jagged(batch)
        return self._run_batch_scalar(batch)

    # ------------------------------------------------------------------
    # Classification / reduction split (multi-process serving seam)
    # ------------------------------------------------------------------
    def classify_batch(self, batch: JaggedBatch) -> tuple[
        np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None
    ]:
        """Run only the (stateless) classification lanes on one batch.

        Returns the per-``(table, tier)`` access counts, the per-tier
        fast-lane hit counts, the per-table replica-lane counts
        (``None`` without replication), and the per-``(table, slot)``
        twrw cut-lane prefix counts (``None`` without twrw shards) —
        everything :meth:`reduce_classified` needs to produce the
        batch's metrics.

        This is the multi-process serving seam: classification touches
        every lookup but no cross-batch state, so worker processes can
        run it in parallel, while the *stateful* reduction (the replica
        router's running least-loaded byte counters) is replayed by the
        front-end aggregator in batch order — keeping merged metrics
        bit-identical to a single-process run.
        """
        if self.vectorized:
            return self._classify_jagged(batch)
        return self._classify_scalar(batch)

    def reduce_classified(
        self,
        counts: np.ndarray,
        hits: np.ndarray,
        replicas: np.ndarray | None = None,
        cuts: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pool classified counts into per-device metrics (stateful).

        The public face of :meth:`_reduce_counts` for callers that split
        classification from reduction (the multi-process aggregator).
        With replication enabled this advances the executor's running
        routing counters, so call it exactly once per batch, in batch
        order.
        """
        return self._reduce_counts(
            np.asarray(counts, dtype=np.int64),
            np.asarray(hits, dtype=np.int64),
            None if replicas is None else np.asarray(replicas, dtype=np.int64),
            None if cuts is None else np.asarray(cuts, dtype=np.int64),
        )

    def reset_routing(self) -> None:
        """Zero the replica router's running load counters.

        Starts an independent routing history on the same plan — what a
        server reset needs to replay a second stream as if the executor
        were freshly built (a no-op without replication).
        """
        self._replica_load[:] = 0

    # ------------------------------------------------------------------
    # Brownout degraded mode (overload control)
    # ------------------------------------------------------------------
    @property
    def brownout_active(self) -> bool:
        """Whether cold-tier home-lane lookups are currently skipped."""
        return self._brownout

    def set_brownout(self, active: bool) -> None:
        """Enter/leave degraded mode.

        While active, :meth:`_reduce_counts` serves only the fast tier,
        each cold tier's staged rows, and the replica lane; the skipped
        cold-tier lookups are counted in ``last_browned`` (per batch)
        and ``browned_by_table`` (cumulative).  Purely a reduce-time
        transform: classification is untouched, so the scalar and
        vectorized paths (and the multi-process classify/reduce split)
        stay bit-identical under brownout.

        Not supported with table-wise-row-wise strategy shards: a twrw
        table's cut-lane prefixes are computed over all its ranks, so
        clamping the cold-tier counts would desynchronize the two
        prefix families the reduction crosses.  (Column shards are
        fine — their scatter follows the clamped counts; browned
        lookups are tallied on the table's base placement device.)
        """
        if active and self._twrw_tables:
            raise ValueError(
                "brownout is not supported with table-wise-row-wise "
                "strategy shards"
            )
        self._brownout = bool(active)

    def reset_brownout(self) -> None:
        """Leave degraded mode and zero the skip counters."""
        self._brownout = False
        self.last_browned[:] = 0
        self.browned_by_table[:] = 0

    # ------------------------------------------------------------------
    # Device fault state (chaos drills)
    # ------------------------------------------------------------------
    @property
    def dead_devices(self) -> tuple[int, ...]:
        """Devices currently marked failed, ascending."""
        return tuple(int(d) for d in np.flatnonzero(~self._device_alive))

    @property
    def has_faults(self) -> bool:
        """True if any device is failed or degraded."""
        return bool(
            (~self._device_alive).any() or (self._device_slowdown != 1.0).any()
        )

    def fail_device(self, device: int) -> None:
        """Mark a device failed: home-lane lookups on it are dropped
        (counted in ``last_dropped``), replicated lookups are rerouted
        to surviving devices, and its slowdown factor is cleared."""
        self._check_device(device)
        self._device_alive[device] = False
        self._device_slowdown[device] = 1.0

    def recover_device(self, device: int) -> None:
        """Clear a device's failed/degraded state."""
        self._check_device(device)
        self._device_alive[device] = True
        self._device_slowdown[device] = 1.0

    def degrade_device(self, device: int, slowdown: float) -> None:
        """Multiply the device's batch service times by ``slowdown``."""
        self._check_device(device)
        if slowdown <= 0:
            raise ValueError(f"slowdown must be > 0, got {slowdown}")
        if not self._device_alive[device]:
            raise ValueError(f"device {device} is failed, not degradable")
        self._device_slowdown[device] = slowdown

    def clear_faults(self) -> None:
        """Return every device to healthy (alive, no slowdown)."""
        self._device_alive[:] = True
        self._device_slowdown[:] = 1.0
        self.last_dropped[:] = 0

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.topology.num_devices:
            raise ValueError(
                f"device {device} out of range for "
                f"{self.topology.num_devices}-device topology"
            )

    def _fused_lane_edges(self) -> dict[str, np.ndarray]:
        """Every registered lane's per-table edges, base-shifted.

        Each lane's cumulative rank cutoffs are shifted into the
        concatenated rank space (``ranker.rank_base``) and stored in
        the flat buffer's dtype so the fused comparisons never promote
        (copy) it.
        """
        if self._fused_edges is None:
            base = self.ranker.rank_base[:-1]
            dtype = self.ranker.fused_dtype
            self._fused_edges = {
                lane.name: (base + lane.edges).astype(dtype)
                for lane in self._lanes
            }
        return self._fused_edges

    def run_jagged(
        self, batch: JaggedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused vectorized accounting over a jagged batch.

        Metric-identical to ``run_ranked(ranker.rank_batch(batch))``,
        restructured for the serving shape (hundreds of tables, small
        microbatches) where per-feature numpy calls dominate: every
        feature's lookups are gathered through the base-shifted
        :meth:`~repro.engine.ranked.RankRemapper.fused_rank` map into
        one flat reused buffer, then classified by
        :meth:`_classify_fused` — one linear pass over the whole
        buffer per tier boundary (and per active fast-lane cutoff)
        instead of several numpy calls per feature or a binary search
        per lookup.
        """
        return self._reduce_counts(*self._classify_jagged(batch))

    def _classify_jagged(self, batch: JaggedBatch) -> tuple[
        np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None
    ]:
        """Gather + fused classification of one jagged batch (no reduce)."""
        num_tables = len(self.plan)
        if batch.num_features != num_tables:
            raise ValueError(
                f"batch has {batch.num_features} features, plan has "
                f"{num_tables} tables"
            )
        num_tiers = self.topology.num_tiers
        total = batch.total_lookups
        if total == 0:
            zeros = np.zeros((num_tables, num_tiers), dtype=np.int64)
            replicas = (
                np.zeros(num_tables, dtype=np.int64)
                if self._has_replicas
                else None
            )
            cuts = (
                np.zeros((num_tables, self._num_cut_lanes), dtype=np.int64)
                if self._num_cut_lanes
                else None
            )
            return zeros, zeros.copy(), replicas, cuts
        dtype = self.ranker.fused_dtype
        if (
            self._flat_rank_scratch.dtype != dtype
            or self._flat_rank_scratch.size < total
        ):
            self._flat_rank_scratch = np.empty(total, dtype=dtype)
        flat = self._flat_rank_scratch[:total]
        tables, starts, pos = [], [], 0
        for j, feature in enumerate(batch):
            values = feature.values
            if values.size:
                tables.append(j)
                starts.append(pos)
                np.take(
                    self.ranker.fused_rank(j), values,
                    out=flat[pos: pos + values.size],
                )
                pos += values.size
        tables = np.asarray(tables, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        return self._classify_fused(flat, tables, starts)

    def _classify_fused(
        self, flat: np.ndarray, tables: np.ndarray, starts: np.ndarray
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None
    ]:
        """Multi-lane linear classification of the flat rank buffer.

        One prefix count per registered lane: expand each lookup's
        per-table edge with ``repeat``, one comparison into the reused
        mask, one segmented reduction — three linear passes per lane,
        regardless of table count.  Tier boundaries are ``bound``
        lanes (prefix differences give the per-tier counts), fast-lane
        cutoffs (cache, staging) cost passes only for the tiers that
        actually stage rows, the replica cutoff and each twrw strategy
        cut are one lane each.  For the dominant hierarchies (two to
        five tiers) this beats a per-lookup binary search over the
        per-table edge grid; it is the direct generalization of the
        original two-tier HBM-cut lane.

        Args:
            flat: base-shifted ranks, grouped by feature.
            tables: table index of each (non-empty) feature group.
            starts: group start offsets into ``flat``.
        """
        num_tables = len(self.plan)
        num_tiers = self.topology.num_tiers
        total = flat.size
        sizes = np.diff(np.append(starts, total))
        counts = np.zeros((num_tables, num_tiers), dtype=np.int64)
        hits = np.zeros((num_tables, num_tiers), dtype=np.int64)
        if self._mask_scratch.size < total:
            self._mask_scratch = np.empty(total, dtype=bool)
        mask = self._mask_scratch[:total]
        edges = self._fused_lane_edges()
        registry = self._lanes

        def prefix_below(lane):
            """Per-feature count of ranks below each feature's edge."""
            np.less(flat, np.repeat(edges[lane.name][tables], sizes), out=mask)
            return np.add.reduceat(mask.view(np.int8), starts, dtype=np.int64)

        replicas = None
        rep_group = None
        if registry.replica is not None:
            # One extra prefix pass classifies the replica lane; the
            # replicated ranks are a prefix of tier 0's block, so tier
            # membership below stays untouched and the lane is peeled
            # off during reduction.
            rep_group = prefix_below(registry.replica)
            replicas = np.zeros(num_tables, dtype=np.int64)
            replicas[tables] = rep_group
        cuts = None
        if registry.cuts:
            # Strategy cut lanes: prefix counts at each twrw interior
            # cut point; the reduction crosses them with the tier
            # prefixes to fill the (tier, shard) cells.
            cuts = np.zeros((num_tables, len(registry.cuts)), dtype=np.int64)
            for lane in registry.cuts:
                cuts[tables, lane.index] = prefix_below(lane)
        prev = np.zeros(tables.size, dtype=np.int64)
        for t in range(num_tiers):
            hit_lane = registry.hit(t)
            if hit_lane is not None:
                baseline = rep_group if t == 0 and rep_group is not None else prev
                hits[tables, t] = prefix_below(hit_lane) - baseline
            bound_lane = registry.bound(t)
            if bound_lane is not None:
                below = prefix_below(bound_lane)
                counts[tables, t] = below - prev
                prev = below
            else:
                counts[tables, t] = sizes - prev
        return counts, hits, replicas, cuts

    def run_ranked(
        self, ranked: RankedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized accounting over a rank-space batch.

        For each table, per-tier counts come from threshold scans over
        the rank array against the plan's cumulative tier boundaries
        (prefix counting: tier ``t`` serves the ranks between boundary
        ``t-1`` and boundary ``t``); the per-(tier, device) access and
        traffic matrices are then pooled with ``bincount`` over the
        plan's table → device assignment.
        """
        num_tables = len(self.plan)
        if ranked.num_features != num_tables:
            raise ValueError(
                f"batch has {ranked.num_features} features, plan has "
                f"{num_tables} tables"
            )
        num_tiers = self.topology.num_tiers
        counts = np.zeros((num_tables, num_tiers), dtype=np.int64)
        hits = np.zeros((num_tables, num_tiers), dtype=np.int64)
        replicas = (
            np.zeros(num_tables, dtype=np.int64) if self._has_replicas else None
        )
        cuts = (
            np.zeros((num_tables, self._num_cut_lanes), dtype=np.int64)
            if self._num_cut_lanes
            else None
        )
        max_lookups = max((f.ranks.size for f in ranked), default=0)
        if self._mask_scratch.size < max_lookups:
            self._mask_scratch = np.empty(max_lookups, dtype=bool)
        for j, feature in enumerate(ranked):
            ranks = feature.ranks
            if ranks.size:
                rep = self._scan_feature(
                    j, ranks, self._mask_scratch[: ranks.size],
                    counts[j], hits[j],
                    None if cuts is None else cuts[j],
                )
                if replicas is not None:
                    replicas[j] = rep
        return self._reduce_counts(counts, hits, replicas, cuts)

    def _scan_feature(
        self,
        table_index: int,
        ranks: np.ndarray,
        mask: np.ndarray,
        counts_row: np.ndarray,
        hits_row: np.ndarray,
        cuts_row: np.ndarray | None = None,
    ) -> int:
        """Per-lane prefix counts for one feature's ranks.

        ``mask`` is a caller-provided bool buffer of ``ranks.size`` that
        the threshold scans reuse.  The registered lanes drive the
        scans: one prefix count at each cumulative tier boundary
        (differences give the per-tier counts without ever
        materializing tier ids), one per active fast-lane cutoff (the
        per-table skip when the cutoff sits at the tier's lower
        boundary is preserved), one per strategy cut lane into
        ``cuts_row``.  This is the scalar parity reference of the fused
        path — same lanes, same reduction, bit-identical metrics.

        Returns the feature's replica-lane count (ranks below the
        replica cutoff; 0 without replication).  Replicated ranks stay
        *included* in the tier-0 count — the reduction peels them off —
        but are excluded from the cache-hit baseline.
        """
        registry = self._lanes
        replicated = 0
        if registry.replica is not None:
            cut = registry.replica.edges_list[table_index]
            if cut:
                np.less(ranks, cut, out=mask)
                replicated = int(np.count_nonzero(mask))
        if cuts_row is not None:
            for lane in registry.cuts:
                edge = lane.edges_list[table_index]
                if edge:
                    np.less(ranks, edge, out=mask)
                    cuts_row[lane.index] = int(np.count_nonzero(mask))
        num_tiers = counts_row.size
        prev = 0
        lower = 0
        for t in range(num_tiers):
            hit_lane = registry.hit(t)
            if hit_lane is not None:
                cutoff = hit_lane.edges_list[table_index]
                if cutoff > lower:
                    np.less(ranks, cutoff, out=mask)
                    baseline = replicated if t == 0 else prev
                    hits_row[t] = int(np.count_nonzero(mask)) - baseline
            bound_lane = registry.bound(t)
            if bound_lane is not None:
                bound = bound_lane.edges_list[table_index]
                np.less(ranks, bound, out=mask)
                below = int(np.count_nonzero(mask))
                counts_row[t] = below - prev
                prev = below
                lower = bound
            else:
                counts_row[t] = ranks.size - prev
        return replicated

    def _reduce_counts(
        self,
        counts: np.ndarray,
        hits: np.ndarray,
        replicas: np.ndarray | None = None,
        cuts: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pool per-(table, tier) counts into per-(tier, device) metrics.

        The pooling is a ``bincount`` over the plan's table → device
        assignment, once for accesses and once for byte traffic; device
        times follow from the additive bandwidth model.  ``hits`` are
        each tier's fast-lane counts: tier 0's move from the HBM lane
        to the cache lane, a cold tier's from its own lane to the
        next-faster tier's.  ``replicas`` (per-table replica-lane
        counts, included in the tier-0 column) are peeled off the home
        device and routed least-loaded across all devices, charged at
        the fastest tier's bandwidth on the device that serves them.

        Strategy-split tables skip the home attribution and scatter at
        reduce time instead: a column table charges every shard its
        exact byte share of each lookup (``dims[s] * dtype_bytes``) and
        splits the lookup counts largest-remainder-proportionally by
        dim; a twrw table crosses its tier prefixes with the classified
        cut prefixes (``cuts``) via the min/max identity to fill the
        per-(tier, shard) cells exactly.  Shared by the scalar and
        vectorized paths, so identical classifications produce
        bit-identical times.
        """
        num_devices = self.topology.num_devices
        num_tiers = self.topology.num_tiers
        self.last_browned[:] = 0
        if self._brownout and num_tiers > 1:
            # Degraded mode: cold-tier home-lane lookups (everything a
            # cold tier serves beyond its staged rows) are skipped, so
            # only fast-tier, staged, and replicated rows execute.  The
            # skip happens before fault accounting — a dead device's
            # cold lookups count as browned, not dropped.
            browned_tbl = counts[:, 1:] - hits[:, 1:]
            if browned_tbl.any():
                counts = counts.copy()
                counts[:, 1:] = hits[:, 1:]
                self.browned_by_table += browned_tbl.sum(axis=1)
                for t in range(1, num_tiers):
                    np.add.at(
                        self.last_browned[t],
                        self.device_of,
                        browned_tbl[:, t - 1],
                    )
        alive = self._device_alive
        faulty = not alive.all()
        route = replicas is not None and self._has_replicas
        if faulty and not alive.any():
            # Nothing survives: the replica lane has nowhere to reroute,
            # so replicated lookups drop with their home lane.
            route = False
        split = bool(self._column_tables or self._twrw_tables)
        if self._twrw_tables and cuts is None:
            raise ValueError(
                "twrw strategy tables require classified cut counts"
            )
        if split:
            counts_home = counts.copy()
            counts_home[self._split_idx, :] = 0
        else:
            counts_home = counts
        counts0 = (
            counts_home[:, 0] - replicas if route else counts_home[:, 0]
        )
        accesses = np.zeros((num_tiers, num_devices), dtype=np.int64)
        traffic = np.zeros((num_tiers, num_devices), dtype=np.float64)
        home_bytes = (
            np.zeros(num_devices, dtype=np.int64) if route else None
        )
        for t in range(num_tiers):
            col = counts0 if t == 0 else counts_home[:, t]
            np.add.at(accesses[t], self.device_of, col)
            traffic[t] = np.bincount(
                self.device_of,
                weights=col * self.row_bytes,
                minlength=num_devices,
            )
            if route:
                np.add.at(
                    home_bytes, self.device_of, col * self._row_bytes_int
                )
        if split:
            # Column shards: every lookup touches every shard for its
            # dim share of the row bytes (traffic is exact); the lookup
            # *counts* are split proportionally by dim with the
            # largest-remainder rule, conserving per-table totals.
            for j, devices, dims, shard_bytes in self._column_tables:
                accesses[:, devices] += proportional_split(counts[j], dims)
                traffic[:, devices] += (
                    counts[j][:, None].astype(np.float64)
                    * shard_bytes[None, :]
                )
            # Twrw shards: the classified cut prefixes cross the tier
            # prefixes — cell (t, s) holds the lookups in both tier
            # t's rank interval and shard s's, by the min/max identity
            # on monotone prefix counts.
            for j, devices, n_cuts in self._twrw_tables:
                pb = np.concatenate(([0], np.cumsum(counts[j])))
                pc = np.concatenate(
                    ([0], cuts[j, :n_cuts], [pb[-1]])
                ).astype(np.int64)
                cells = np.maximum(
                    0,
                    np.minimum(pb[1:, None], pc[None, 1:])
                    - np.maximum(pb[:-1, None], pc[None, :-1]),
                )
                accesses[:, devices] += cells
                traffic[:, devices] += cells * self.row_bytes[j]
        self.last_dropped[:] = 0
        if faulty:
            # Dead devices serve nothing: their home-lane lookups are
            # dropped (tallied for the recovery metrics), their traffic
            # disappears from the time model, and their pinned bytes
            # stop feeding the replica router's load counters.
            dead = ~alive
            self.last_dropped[dead] = accesses[:, dead].sum(axis=0)
            accesses[:, dead] = 0
            traffic[:, dead] = 0.0
            if route:
                home_bytes[dead] = 0
        replica_accesses = np.zeros(num_devices, dtype=np.int64)
        if route:
            # The routing counters see the batch's home-lane bytes
            # first (so "least loaded" accounts for the traffic the
            # placement already pins), then each feature's replicated
            # lookups in trace order.
            self._replica_load += home_bytes
            replica_accesses, replica_bytes = self._route_replicas(replicas)
            accesses[0] += replica_accesses
            traffic[0] += replica_bytes
        times = (traffic * self._inv_bw[:, None]).sum(axis=0)
        tier_hits = np.zeros((num_tiers, num_devices), dtype=np.int64)
        if self.cache is not None or self.staging is not None:
            for t in range(num_tiers):
                if not hits[:, t].any():
                    continue
                np.add.at(tier_hits[t], self.device_of, hits[:, t])
                hit_bytes = np.bincount(
                    self.device_of, weights=hits[:, t] * self.row_bytes,
                    minlength=num_devices,
                )
                if faulty:
                    # A dead device's hits dropped with its accesses —
                    # no fast-lane discount on traffic already zeroed.
                    tier_hits[t][dead] = 0
                    hit_bytes[dead] = 0.0
                fast_inv_bw = (
                    1.0 / self.cache.bandwidth if t == 0
                    else self._inv_bw[t - 1]
                )
                # Hit bytes move from the tier's lane to the fast lane.
                times -= hit_bytes * self._inv_bw[t]
                times += hit_bytes * fast_inv_bw
        if (self._device_slowdown != 1.0).any():
            times = times * self._device_slowdown
        return times * 1e3, accesses, tier_hits, replica_accesses

    def _route_replicas(
        self, replicas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Send each feature's replicated lookups to least-loaded devices.

        Features are processed in trace (table) order; within a feature
        every lookup weighs the table's ``row_bytes``, so the greedy
        per-lookup assignment has the closed form
        :func:`least_loaded_counts` the vectorized path uses.  The
        scalar path runs the per-lookup argmin loop it summarizes —
        the parity reference the replication bench pins.  Both mutate
        the executor's running byte counters.

        Failed devices are masked out of the lane: the closed form runs
        on the compacted surviving load vector and scatters back (the
        ascending survivor order preserves the lowest-device-id tie
        break), and the scalar loop takes its argmin over survivors —
        bit-parity holds under any fail set.
        """
        num_devices = self.topology.num_devices
        alive = self._device_alive
        masked = not alive.all()
        alive_idx = np.flatnonzero(alive) if masked else None
        acc = np.zeros(num_devices, dtype=np.int64)
        routed_bytes = np.zeros(num_devices, dtype=np.int64)
        for j in np.flatnonzero(replicas):
            n = int(replicas[j])
            w = int(self._row_bytes_int[j])
            if self.vectorized:
                if masked:
                    taken = np.zeros(num_devices, dtype=np.int64)
                    taken[alive_idx] = least_loaded_counts(
                        self._replica_load[alive_idx], n, w
                    )
                else:
                    taken = least_loaded_counts(self._replica_load, n, w)
                self._replica_load += taken * w
            else:
                taken = np.zeros(num_devices, dtype=np.int64)
                load = self._replica_load
                if masked:
                    for _ in range(n):
                        device = int(alive_idx[np.argmin(load[alive_idx])])
                        taken[device] += 1
                        load[device] += w
                else:
                    for _ in range(n):
                        device = int(np.argmin(load))
                        taken[device] += 1
                        load[device] += w
            acc += taken
            routed_bytes += taken * w
        return acc, routed_bytes.astype(np.float64)

    def _run_batch_scalar(
        self, batch: JaggedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference path: resolve every lookup through the remap tables.

        Classification is per lookup — tier membership and within-tier
        offsets come straight from the remapping tables of Section 4.3
        rather than from rank thresholds — but the classified counts
        feed the same :meth:`_reduce_counts` as the vectorized paths,
        so agreement on classification means bit-identical metrics.
        """
        return self._reduce_counts(*self._classify_scalar(batch))

    def _classify_scalar(self, batch: JaggedBatch) -> tuple[
        np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None
    ]:
        """Per-lookup remap-table classification of one batch (no reduce)."""
        num_tables = len(self.plan)
        num_tiers = self.topology.num_tiers
        counts = np.zeros((num_tables, num_tiers), dtype=np.int64)
        hits = np.zeros((num_tables, num_tiers), dtype=np.int64)
        replicas = (
            np.zeros(num_tables, dtype=np.int64) if self._has_replicas else None
        )
        cuts = (
            np.zeros((num_tables, self._num_cut_lanes), dtype=np.int64)
            if self._num_cut_lanes
            else None
        )
        scan_hits = self.cache is not None or self.staging is not None
        for j, feature in enumerate(batch):
            if feature.values.size == 0:
                continue
            cut = self._replica_cut_list[j]
            table_cuts = self._cut_points[j] if cuts is not None else None
            has_cuts = table_cuts is not None and bool(table_cuts.any())
            if scan_hits or cut or has_cuts:
                tiers, offsets = self.remap_tables[j].apply(feature.values)
                counts[j] = np.bincount(tiers, minlength=num_tiers)
                if has_cuts:
                    # A (tier, offset) pair maps back to the global
                    # frequency rank by adding the cumulative rows of
                    # the preceding tiers, so strategy cut lanes are
                    # rank thresholds here too.
                    tier_base = np.concatenate(
                        ([0], self._tier_bounds[j, :-1])
                    )
                    ranks = offsets + tier_base[tiers]
                    for s in range(table_cuts.size):
                        edge = int(table_cuts[s])
                        if edge:
                            cuts[j, s] = int(np.count_nonzero(ranks < edge))
                if cut:
                    # A tier-0 offset *is* the row's frequency rank
                    # (the fastest tier holds the leading ranked rows),
                    # so the replica lane is an offset threshold here.
                    replicas[j] = np.count_nonzero(
                        (tiers == 0) & (offsets < cut)
                    )
                threshold = self._cache_threshold[j]
                if self.cache is not None and threshold > 0:
                    hits[j, 0] = np.count_nonzero(
                        (tiers == 0) & (offsets >= cut) & (offsets < threshold)
                    )
                for t in range(1, num_tiers):
                    staged = self._stage_rows[j, t]
                    if staged > 0:
                        hits[j, t] = np.count_nonzero(
                            (tiers == t) & (offsets < staged)
                        )
            else:
                counts[j] = self.remap_tables[j].tier_counts(feature.values)
        return counts, hits, replicas, cuts

    def run(self, batches) -> RunMetrics:
        """Execute a sequence of batches and collect metrics.

        ``batches`` may mix :class:`~repro.data.batch.JaggedBatch` and
        pre-ranked :class:`~repro.engine.ranked.RankedBatch` items;
        pre-ranking via :meth:`prepare` amortizes the remap across
        strategies sharing a profile.
        """
        rows = []
        browned = [] if self._brownout else None
        for batch in batches:
            rows.append(self.run_batch(batch))
            if browned is not None:
                browned.append(self.last_browned.copy())
        return _collect_metrics(
            self.plan.strategy, self.topology, rows,
            self.cache is not None, self.staging is not None,
            self.replication is not None,
            browned=browned,
        )

    def expected_device_costs_ms(self, batch_size: int) -> np.ndarray:
        """Analytic per-device expected cost (the MILP's Constraint 12).

        For each table the expected per-iteration accesses are
        ``coverage * avg_pooling * batch_size``; the profiled CDF gives
        the fraction of them served by each tier's row block.  Useful to
        cross-check measured times against the optimized cost model.
        The cache and staging models are intentionally excluded: this
        reproduces exactly what the MILP sees.  Strategy plans route
        through the shard-aware evaluator — same cost model, per-shard
        device attribution.
        """
        if self.strategy_plan is not None:
            return strategy_device_costs_ms(
                self.strategy_plan, self.model, self.profile,
                self.topology, batch_size,
            )
        costs = np.zeros(self.topology.num_devices)
        for j, placement in enumerate(self.plan):
            stats = self.profile[placement.table_index]
            if stats.total_accesses <= 0:
                continue
            expected = stats.coverage * stats.avg_pooling * batch_size
            cdf = stats.cdf
            prev_cov = 0.0
            rows_seen = 0
            for tier_index, rows in enumerate(placement.rows_per_tier):
                rows_seen += rows
                cov = cdf.coverage_of_rows(rows_seen)
                frac = cov - prev_cov
                prev_cov = cov
                costs[placement.device] += (
                    expected * frac * self.row_bytes[j] * self._inv_bw[tier_index]
                )
        return costs * 1e3


def least_loaded_counts(load: np.ndarray, n: int, w: int) -> np.ndarray:
    """Per-device item counts of a greedy least-loaded assignment.

    Models assigning ``n`` items of ``w`` bytes each, one at a time, to
    the device with the smallest byte counter (ties to the lowest
    device id), updating the counter after each item.  The assignment
    sequence is exactly the ``n`` lexicographically smallest
    ``(value, device)`` pairs popped from the per-device arithmetic
    progressions ``load[d] + m * w`` — so one integer binary search for
    the value of the ``n``-th pop replaces the per-item loop, and the
    result is bit-identical to the scalar argmin loop the reference
    executor runs.

    Args:
        load: current per-device byte counters (not modified).
        n: items to assign.
        w: bytes per item (must be positive).

    Returns:
        (num_devices,) int64 item counts summing to ``n``.
    """
    load = np.asarray(load, dtype=np.int64)
    counts = np.zeros(load.size, dtype=np.int64)
    if n <= 0:
        return counts
    if w <= 0:
        raise ValueError(f"item weight must be positive, got {w}")

    def pops_below(value: int) -> int:
        """How many progression terms are strictly below ``value``."""
        return int(np.maximum(0, (value - load + w - 1) // w).sum())

    lo = int(load.min())
    hi = lo + n * w  # the n-th pop is at most lo + (n - 1) * w
    while lo < hi:
        mid = (lo + hi) // 2
        if pops_below(mid + 1) >= n:
            hi = mid
        else:
            lo = mid + 1
    nth_value = lo
    counts = np.maximum(0, (nth_value - load + w - 1) // w)
    remaining = n - int(counts.sum())
    if remaining > 0:
        # Pops tied at the n-th value resolve by device id, lowest first.
        tied = np.flatnonzero(
            (nth_value >= load) & ((nth_value - load) % w == 0)
        )
        counts[tied[:remaining]] += 1
    return counts


def _collect_metrics(
    strategy: str,
    topology: SystemTopology,
    rows: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    with_cache: bool,
    with_staging: bool = False,
    with_replicas: bool = False,
    browned: list[np.ndarray] | None = None,
) -> RunMetrics:
    """Stack per-iteration (times, accesses, hits, replicas) rows."""
    times_arr = np.array([r[0] for r in rows])
    stacked = np.array([r[1] for r in rows])  # (iters, tiers, devices)
    tier_accesses = {
        tier.name: stacked[:, t, :] for t, tier in enumerate(topology.tiers)
    }
    hits = None
    if rows and (with_cache or with_staging):
        hits = np.array([r[2] for r in rows])  # (iters, tiers, devices)
    replica = None
    if rows and with_replicas:
        replica = np.array([r[3] for r in rows])  # (iters, devices)
    return RunMetrics(
        strategy=strategy,
        times_ms=times_arr,
        tier_accesses=tier_accesses,
        cache_hits=hits[:, 0, :] if with_cache and hits is not None else None,
        staged_hits=hits if with_staging and hits is not None else None,
        replica_hits=replica,
        browned_out=np.array(browned) if browned else None,
    )


def replay_trace(
    executors: list[ShardedExecutor],
    batches,
    ranker: RankRemapper | None = None,
) -> list[RunMetrics]:
    """Replay one trace against several plans in a single fused pass.

    The hot loop of every multi-strategy comparison (Tables 3-5,
    Figures 11-13) replays identical batches against several sharding
    plans of the *same* model, profile, and topology.  This helper ranks
    each feature's lookups once (into a reusable scratch buffer — no
    per-batch allocation) and immediately runs every executor's
    threshold scans while the rank array is still cache-resident, so the
    trace's memory traffic is paid once rather than once per strategy.

    Args:
        executors: one executor per plan; all must share the model,
            profile, and topology (plans and cache models may differ).
        batches: the common trace — jagged batches, or pre-ranked
            batches from the shared profile's :class:`RankRemapper`.
        ranker: shared rank remapper; defaults to the first executor's.

    Returns:
        One :class:`RunMetrics` per executor, identical to what
        ``executor.run(batches)`` would produce for each alone.
    """
    if not executors:
        return []
    first = executors[0]
    num_tables = len(first.plan)
    num_tiers = first.topology.num_tiers
    for ex in executors:
        if len(ex.plan) != num_tables or ex.topology.num_tiers != num_tiers:
            raise ValueError(
                "replay_trace requires executors sharing one model/topology"
            )
    if ranker is None:
        ranker = first.ranker
    num_plans = len(executors)
    rows: list[list] = [[] for _ in executors]
    browned: list[list | None] = [
        [] if ex._brownout else None for ex in executors
    ]
    mask = np.empty(0, dtype=bool)
    scratches: dict = {}
    for batch in batches:
        pre_ranked = isinstance(batch, RankedBatch)
        if batch.num_features != num_tables:
            raise ValueError(
                f"batch has {batch.num_features} features, plans have "
                f"{num_tables} tables"
            )
        counts = np.zeros((num_plans, num_tables, num_tiers), dtype=np.int64)
        hits = np.zeros((num_plans, num_tables, num_tiers), dtype=np.int64)
        replicas = np.zeros((num_plans, num_tables), dtype=np.int64)
        cut_arrs = [
            np.zeros((num_tables, ex._num_cut_lanes), dtype=np.int64)
            if ex._num_cut_lanes
            else None
            for ex in executors
        ]
        for j, feature in enumerate(batch):
            if pre_ranked:
                ranks = feature.ranks
            else:
                values = feature.values
                dtype = ranker.rank_dtype(j)
                scratch = scratches.get(dtype)
                if scratch is None or scratch.size < values.size:
                    scratch = np.empty(max(values.size, 1), dtype=dtype)
                    scratches[dtype] = scratch
                ranks = scratch[: values.size]
                ranker.rank_into(j, values, ranks)
            n = ranks.size
            if n == 0:
                continue
            if mask.size < n:
                mask = np.empty(n, dtype=bool)
            for s, ex in enumerate(executors):
                cut_arr = cut_arrs[s]
                replicas[s, j] = ex._scan_feature(
                    j, ranks, mask[:n], counts[s, j], hits[s, j],
                    None if cut_arr is None else cut_arr[j],
                )
        for s, ex in enumerate(executors):
            rows[s].append(
                ex._reduce_counts(
                    counts[s], hits[s], replicas[s], cut_arrs[s]
                )
            )
            if browned[s] is not None:
                browned[s].append(ex.last_browned.copy())
    return [
        _collect_metrics(
            ex.plan.strategy, ex.topology, rows[s],
            ex.cache is not None, ex.staging is not None,
            ex.replication is not None,
            browned=browned[s],
        )
        for s, ex in enumerate(executors)
    ]
