"""Trace-driven execution of a sharding plan.

Replays jagged training batches against a plan's remapping tables.  For
each table, each lookup index resolves to the tier hosting that row; the
per-GPU iteration time is the sum over the GPU's tables of per-tier
traffic divided by tier bandwidth — the paper's additive cost model (the
summation property discussed under "Key Properties of RecShard's MILP":
mixed HBM/UVM reads within a kernel serialize on current GPUs).

An optional cache model (:mod:`repro.engine.cache`) serves each device's
expectedly-hottest HBM rows at cache bandwidth, reproducing the
locality-driven mean-time gains the paper measures on real GPUs.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ShardingPlan
from repro.core.remap import RemappingTable
from repro.data.batch import JaggedBatch
from repro.data.model import ModelSpec
from repro.engine.cache import CacheModel, cached_rows_per_table
from repro.engine.metrics import RunMetrics
from repro.memory.topology import SystemTopology


class ShardedExecutor:
    """Executes embedding lookups for one model under one plan.

    Args:
        model: the model spec (table geometry).
        plan: the sharding plan under test.
        profile: the profile whose frequency ranking orders rows across
            tiers (the same ranking the remapping layer ships to
            production in Section 4.3).
        topology: tier capacities/bandwidths to charge against.
        validate: check plan feasibility up front (disable only for
            deliberately infeasible what-if runs).
        cache: optional per-device cache model; each device's expectedly
            hottest HBM rows are served at cache bandwidth.
    """

    def __init__(
        self,
        model: ModelSpec,
        plan: ShardingPlan,
        profile,
        topology: SystemTopology,
        validate: bool = True,
        cache: CacheModel | None = None,
    ):
        if validate:
            plan.validate(model, topology)
        self.model = model
        self.plan = plan
        self.profile = profile
        self.topology = topology
        self.remap_tables = [
            RemappingTable(profile[p.table_index].cdf.row_order, p.rows_per_tier)
            for p in plan
        ]
        self.device_of = np.array([p.device for p in plan], dtype=np.int64)
        self.row_bytes = np.array(
            [t.row_bytes for t in model.tables], dtype=np.float64
        )
        self._inv_bw = np.array(
            [1.0 / tier.bandwidth for tier in topology.tiers], dtype=np.float64
        )
        self.cache = cache
        self._cache_threshold = np.zeros(model.num_tables, dtype=np.int64)
        if cache is not None:
            for device in range(topology.num_devices):
                for table_index, rows in cached_rows_per_table(
                    cache, plan, profile, model, device
                ).items():
                    self._cache_threshold[table_index] = rows

    def run_batch(
        self, batch: JaggedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Execute one batch.

        Returns:
            times_ms: per-device EMB time for this iteration (ms).
            accesses: (num_tiers, num_devices) access counts; cache hits
                are counted within their home (HBM) tier.
            cache_hits: per-device accesses served from cache.
        """
        num_devices = self.topology.num_devices
        num_tiers = self.topology.num_tiers
        accesses = np.zeros((num_tiers, num_devices), dtype=np.int64)
        traffic = np.zeros((num_tiers, num_devices), dtype=np.float64)
        cache_hits = np.zeros(num_devices, dtype=np.int64)
        cache_traffic = np.zeros(num_devices, dtype=np.float64)
        for j, feature in enumerate(batch):
            if feature.values.size == 0:
                continue
            device = self.device_of[j]
            threshold = self._cache_threshold[j]
            if self.cache is not None and threshold > 0:
                tiers, offsets = self.remap_tables[j].apply(feature.values)
                counts = np.bincount(tiers, minlength=num_tiers)
                hits = int(np.count_nonzero((tiers == 0) & (offsets < threshold)))
                cache_hits[device] += hits
                # Hit bytes move from the HBM lane to the cache lane.
                traffic[0, device] -= hits * self.row_bytes[j]
                cache_traffic[device] += hits * self.row_bytes[j]
            else:
                counts = self.remap_tables[j].tier_counts(feature.values)
            accesses[:, device] += counts
            traffic[:, device] += counts * self.row_bytes[j]
        times = (traffic * self._inv_bw[:, None]).sum(axis=0)
        if self.cache is not None:
            times += cache_traffic / self.cache.bandwidth
        return times * 1e3, accesses, cache_hits

    def run(self, batches) -> RunMetrics:
        """Execute a sequence of batches and collect metrics."""
        times = []
        access_list = []
        hit_list = []
        for batch in batches:
            times_ms, accesses, cache_hits = self.run_batch(batch)
            times.append(times_ms)
            access_list.append(accesses)
            hit_list.append(cache_hits)
        times_arr = np.array(times)
        stacked = np.array(access_list)  # (iters, tiers, devices)
        tier_accesses = {
            tier.name: stacked[:, t, :]
            for t, tier in enumerate(self.topology.tiers)
        }
        return RunMetrics(
            strategy=self.plan.strategy,
            times_ms=times_arr,
            tier_accesses=tier_accesses,
            cache_hits=np.array(hit_list) if self.cache is not None else None,
        )

    def expected_device_costs_ms(self, batch_size: int) -> np.ndarray:
        """Analytic per-device expected cost (the MILP's Constraint 12).

        For each table the expected per-iteration accesses are
        ``coverage * avg_pooling * batch_size``; the profiled CDF gives
        the fraction of them served by each tier's row block.  Useful to
        cross-check measured times against the optimized cost model.
        The cache model is intentionally excluded: this reproduces
        exactly what the MILP sees.
        """
        costs = np.zeros(self.topology.num_devices)
        for j, placement in enumerate(self.plan):
            stats = self.profile[placement.table_index]
            if stats.total_accesses <= 0:
                continue
            expected = stats.coverage * stats.avg_pooling * batch_size
            cdf = stats.cdf
            prev_cov = 0.0
            rows_seen = 0
            for tier_index, rows in enumerate(placement.rows_per_tier):
                rows_seen += rows
                cov = cdf.coverage_of_rows(rows_seen)
                frac = cov - prev_cov
                prev_cov = cov
                costs[placement.device] += (
                    expected * frac * self.row_bytes[j] * self._inv_bw[tier_index]
                )
        return costs * 1e3
