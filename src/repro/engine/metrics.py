"""Execution metrics: per-GPU iteration times and per-tier access counts."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IterationStats:
    """Summary of per-GPU average iteration times (a Table 3 row).

    All values in simulated milliseconds.  Training throughput is bound
    by the slowest GPU, so ``max`` is the figure of merit; ``std``
    captures load balance.
    """

    min: float
    max: float
    mean: float
    std: float

    def as_row(self) -> str:
        """Format as the paper's ``min/max/mean/std`` table cell."""
        return f"{self.min:.2f}/{self.max:.2f}/{self.mean:.2f}/{self.std:.2f}"


@dataclass
class RunMetrics:
    """Raw measurements of one strategy's execution run.

    Attributes:
        strategy: strategy label.
        times_ms: (iterations, devices) per-iteration per-GPU EMB time.
        tier_accesses: tier name -> (iterations, devices) access counts.
        cache_hits: (iterations, devices) accesses served from the cache
            model, when one was enabled (hits are a subset of the HBM
            tier's counts, never additional traffic).
        staged_hits: (iterations, tiers, devices) accesses served from a
            fast lane when a staging model was enabled — slice ``t >= 1``
            counts tier-``t`` rows served at tier ``t - 1`` bandwidth
            (a subset of the tier's counts, never additional traffic).
        replica_hits: (iterations, devices) accesses served from the
            hot-row replica lane when the plan carried a replica set —
            routed least-loaded, counted on the *serving* device's
            fastest tier (so they are included in, not additional to,
            the fastest tier's access counts).
        browned_out: (iterations, tiers, devices) cold-tier lookups
            *skipped* while the executor ran in brownout degraded mode
            (overload control) — the measured quality cost of degraded
            service; these lookups appear in no tier's access counts.
    """

    strategy: str
    times_ms: np.ndarray
    tier_accesses: dict[str, np.ndarray] = field(default_factory=dict)
    cache_hits: np.ndarray | None = None
    staged_hits: np.ndarray | None = None
    replica_hits: np.ndarray | None = None
    browned_out: np.ndarray | None = None

    @property
    def num_iterations(self) -> int:
        return self.times_ms.shape[0]

    @property
    def num_devices(self) -> int:
        return self.times_ms.shape[1]

    def per_device_avg_times(self) -> np.ndarray:
        """Per-GPU iteration time averaged over iterations (Table 3 basis)."""
        return self.times_ms.mean(axis=0)

    def iteration_stats(self) -> IterationStats:
        """Min/Max/Mean/StdDev across per-GPU averages (a Table 3 row)."""
        per_device = self.per_device_avg_times()
        return IterationStats(
            min=float(per_device.min()),
            max=float(per_device.max()),
            mean=float(per_device.mean()),
            std=float(per_device.std()),
        )

    def bound_time_ms(self) -> float:
        """Training-throughput-relevant time: the slowest GPU's average."""
        return float(self.per_device_avg_times().max())

    def avg_accesses_per_gpu_iteration(self, tier: str) -> float:
        """Average accesses per GPU per iteration on ``tier`` (Table 5)."""
        counts = self.tier_accesses[tier]
        return float(counts.mean())

    def tier_access_fraction(self, tier: str) -> float:
        """Fraction of all accesses served from ``tier``."""
        total = sum(counts.sum() for counts in self.tier_accesses.values())
        if total == 0:
            return 0.0
        return float(self.tier_accesses[tier].sum() / total)

    def cache_hit_fraction(self) -> float:
        """Fraction of all accesses served from cache (0 without a model)."""
        if self.cache_hits is None:
            return 0.0
        total = sum(counts.sum() for counts in self.tier_accesses.values())
        if total == 0:
            return 0.0
        return float(self.cache_hits.sum() / total)

    def staged_fraction(self, tier: str) -> float:
        """Fraction of ``tier``'s accesses served from the staging lane
        (0 without a staging model)."""
        if self.staged_hits is None:
            return 0.0
        tier_index = list(self.tier_accesses).index(tier)
        total = self.tier_accesses[tier].sum()
        if total == 0:
            return 0.0
        return float(self.staged_hits[:, tier_index, :].sum() / total)

    def replica_fraction(self) -> float:
        """Fraction of all accesses served from the replica lane
        (0 without a replicated plan)."""
        if self.replica_hits is None:
            return 0.0
        total = sum(counts.sum() for counts in self.tier_accesses.values())
        if total == 0:
            return 0.0
        return float(self.replica_hits.sum() / total)

    @property
    def browned_out_lookups(self) -> int:
        """Cold-tier lookups skipped under brownout over the whole run."""
        if self.browned_out is None:
            return 0
        return int(self.browned_out.sum())

    def browned_fraction(self) -> float:
        """Skipped cold-tier lookups over everything classified (served
        plus skipped) — the coverage loss brownout trades for latency
        (0 when brownout never engaged)."""
        if self.browned_out is None:
            return 0.0
        served = sum(counts.sum() for counts in self.tier_accesses.values())
        skipped = self.browned_out.sum()
        total = served + skipped
        if total == 0:
            return 0.0
        return float(skipped / total)

    def device_access_totals(self) -> np.ndarray:
        """Accesses served per device, summed over tiers and iterations."""
        totals = np.zeros(self.num_devices, dtype=np.int64)
        for counts in self.tier_accesses.values():
            totals += counts.sum(axis=0).astype(np.int64)
        return totals

    def load_imbalance(self) -> float:
        """Max/mean per-device access counts — the skew replication
        attacks (1.0 is perfectly balanced; 0.0 when nothing was
        served)."""
        totals = self.device_access_totals()
        mean = totals.mean()
        if mean <= 0:
            return 0.0
        return float(totals.max() / mean)

    def table5_row(self) -> dict[str, float]:
        """Per-tier average accesses per GPU-iteration (a Table 5 row)."""
        return {
            tier: self.avg_accesses_per_gpu_iteration(tier)
            for tier in self.tier_accesses
        }
