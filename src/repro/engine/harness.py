"""Experiment harness: profile, shard, execute, compare (Figure 10 end to end).

Orchestrates the full RecShard pipeline for one or more strategies over
a common trace, producing the measurements behind Figures 11-13 and
Tables 3-6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.model import ModelSpec
from repro.data.synthetic import TraceGenerator
from repro.engine.executor import ShardedExecutor, replay_trace
from repro.engine.metrics import RunMetrics
from repro.engine.ranked import RankRemapper
from repro.memory.topology import SystemTopology
from repro.stats.profiler import ModelProfile, analytic_profile, profile_trace


@dataclass
class ExperimentResult:
    """Everything measured for one strategy on one model."""

    strategy: str
    model_name: str
    plan: object
    metrics: RunMetrics
    shard_seconds: float
    metadata: dict = field(default_factory=dict)

    def table3_row(self) -> str:
        """Min/Max/Mean/Std per-GPU ms, formatted like a Table 3 cell."""
        return self.metrics.iteration_stats().as_row()


def build_profile(
    model: ModelSpec,
    batch_size: int,
    profile_batches: int = 4,
    sample_rate: float = 1.0,
    seed: int = 123,
    analytic: bool = False,
) -> ModelProfile:
    """Phase 1 (Section 4.1): profile training data, or use analytic stats."""
    if analytic:
        return analytic_profile(model)
    generator = TraceGenerator(model, batch_size=batch_size, seed=seed)
    return profile_trace(
        model, generator, num_batches=profile_batches,
        sample_rate=sample_rate, seed=seed,
    )


def run_experiment(
    model: ModelSpec,
    sharder,
    topology: SystemTopology,
    batch_size: int,
    iterations: int = 5,
    profile: ModelProfile | None = None,
    trace_seed: int = 2024,
    shared_batches: list | None = None,
    vectorized: bool = True,
    ranker: RankRemapper | None = None,
) -> ExperimentResult:
    """Run the full pipeline for one strategy.

    Args:
        model: workload spec.
        sharder: object with ``name`` and ``shard(model, profile, topology)``.
        topology: memory system.
        batch_size: samples per iteration.
        iterations: measured iterations.
        profile: pre-built profile (built analytically when omitted).
        trace_seed: seed of the evaluation trace (differs from the
            profiling seed, so plans are tested out of sample).
        shared_batches: pre-generated batches to reuse across strategies
            (guarantees every strategy sees identical traffic); may be
            jagged batches or a pre-ranked trace from the profile's
            :class:`~repro.engine.ranked.RankRemapper`.
        vectorized: executor mode (see :class:`ShardedExecutor`).
        ranker: shared rank remapper for ``profile`` (built lazily by
            the executor when omitted).
    """
    if profile is None:
        profile = analytic_profile(model)
    start = time.perf_counter()
    plan = sharder.shard(model, profile, topology)
    shard_seconds = time.perf_counter() - start

    if shared_batches is None:
        generator = TraceGenerator(model, batch_size=batch_size, seed=trace_seed)
        shared_batches = list(generator.batches(iterations))
    executor = ShardedExecutor(
        model, plan, profile, topology, vectorized=vectorized, ranker=ranker
    )
    metrics = executor.run(shared_batches)
    return ExperimentResult(
        strategy=sharder.name,
        model_name=model.name,
        plan=plan,
        metrics=metrics,
        shard_seconds=shard_seconds,
        metadata=dict(plan.metadata),
    )


def compare_strategies(
    model: ModelSpec,
    sharders: list,
    topology: SystemTopology,
    batch_size: int,
    iterations: int = 5,
    profile: ModelProfile | None = None,
    trace_seed: int = 2024,
    vectorized: bool = True,
) -> dict[str, ExperimentResult]:
    """Run several strategies over identical batches (Tables 3-5).

    In vectorized mode all strategies replay the common trace in one
    fused :func:`~repro.engine.executor.replay_trace` pass: each batch's
    lookups are translated to frequency ranks once (the Section 4.3
    remapping transform) and every plan's threshold scans run while the
    rank array is cache-resident, so per-strategy cost is pure counting.
    """
    if profile is None:
        profile = analytic_profile(model)
    generator = TraceGenerator(model, batch_size=batch_size, seed=trace_seed)
    shared_batches = list(generator.batches(iterations))
    if not vectorized:
        results = {}
        for sharder in sharders:
            results[sharder.name] = run_experiment(
                model,
                sharder,
                topology,
                batch_size=batch_size,
                iterations=iterations,
                profile=profile,
                trace_seed=trace_seed,
                shared_batches=shared_batches,
                vectorized=False,
            )
        return results

    ranker = RankRemapper(profile)
    executors = []
    shard_times = []
    for sharder in sharders:
        start = time.perf_counter()
        plan = sharder.shard(model, profile, topology)
        shard_times.append(time.perf_counter() - start)
        executors.append(
            ShardedExecutor(
                model, plan, profile, topology, ranker=ranker
            )
        )
    all_metrics = replay_trace(executors, shared_batches, ranker=ranker)
    return {
        sharder.name: ExperimentResult(
            strategy=sharder.name,
            model_name=model.name,
            plan=executor.plan,
            metrics=metrics,
            shard_seconds=shard_seconds,
            metadata=dict(executor.plan.metadata),
        )
        for sharder, executor, metrics, shard_seconds in zip(
            sharders, executors, all_metrics, shard_times
        )
    }


def speedup_table(results: dict[str, ExperimentResult]) -> dict[str, float]:
    """Figure 11's view: per-strategy speedup over the slowest strategy.

    Times are bound by the slowest GPU (max per-GPU average).
    """
    bounds = {
        name: result.metrics.bound_time_ms() for name, result in results.items()
    }
    slowest = max(bounds.values())
    return {name: slowest / bound for name, bound in bounds.items()}
