"""Experiment harness: profile, shard, execute, compare (Figure 10 end to end).

Orchestrates the full RecShard pipeline for one or more strategies over
a common trace, producing the measurements behind Figures 11-13 and
Tables 3-6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.model import ModelSpec
from repro.data.synthetic import TraceGenerator
from repro.engine.executor import ShardedExecutor
from repro.engine.metrics import RunMetrics
from repro.memory.topology import SystemTopology
from repro.stats.profiler import ModelProfile, analytic_profile, profile_trace


@dataclass
class ExperimentResult:
    """Everything measured for one strategy on one model."""

    strategy: str
    model_name: str
    plan: object
    metrics: RunMetrics
    shard_seconds: float
    metadata: dict = field(default_factory=dict)

    def table3_row(self) -> str:
        return self.metrics.iteration_stats().as_row()


def build_profile(
    model: ModelSpec,
    batch_size: int,
    profile_batches: int = 4,
    sample_rate: float = 1.0,
    seed: int = 123,
    analytic: bool = False,
) -> ModelProfile:
    """Phase 1 (Section 4.1): profile training data, or use analytic stats."""
    if analytic:
        return analytic_profile(model)
    generator = TraceGenerator(model, batch_size=batch_size, seed=seed)
    return profile_trace(
        model, generator, num_batches=profile_batches,
        sample_rate=sample_rate, seed=seed,
    )


def run_experiment(
    model: ModelSpec,
    sharder,
    topology: SystemTopology,
    batch_size: int,
    iterations: int = 5,
    profile: ModelProfile | None = None,
    trace_seed: int = 2024,
    shared_batches: list | None = None,
) -> ExperimentResult:
    """Run the full pipeline for one strategy.

    Args:
        model: workload spec.
        sharder: object with ``name`` and ``shard(model, profile, topology)``.
        topology: memory system.
        batch_size: samples per iteration.
        iterations: measured iterations.
        profile: pre-built profile (built analytically when omitted).
        trace_seed: seed of the evaluation trace (differs from the
            profiling seed, so plans are tested out of sample).
        shared_batches: pre-generated batches to reuse across strategies
            (guarantees every strategy sees identical traffic).
    """
    if profile is None:
        profile = analytic_profile(model)
    start = time.perf_counter()
    plan = sharder.shard(model, profile, topology)
    shard_seconds = time.perf_counter() - start

    if shared_batches is None:
        generator = TraceGenerator(model, batch_size=batch_size, seed=trace_seed)
        shared_batches = list(generator.batches(iterations))
    executor = ShardedExecutor(model, plan, profile, topology)
    metrics = executor.run(shared_batches)
    return ExperimentResult(
        strategy=sharder.name,
        model_name=model.name,
        plan=plan,
        metrics=metrics,
        shard_seconds=shard_seconds,
        metadata=dict(plan.metadata),
    )


def compare_strategies(
    model: ModelSpec,
    sharders: list,
    topology: SystemTopology,
    batch_size: int,
    iterations: int = 5,
    profile: ModelProfile | None = None,
    trace_seed: int = 2024,
) -> dict[str, ExperimentResult]:
    """Run several strategies over identical batches (Tables 3-5)."""
    if profile is None:
        profile = analytic_profile(model)
    generator = TraceGenerator(model, batch_size=batch_size, seed=trace_seed)
    shared_batches = list(generator.batches(iterations))
    results = {}
    for sharder in sharders:
        results[sharder.name] = run_experiment(
            model,
            sharder,
            topology,
            batch_size=batch_size,
            iterations=iterations,
            profile=profile,
            trace_seed=trace_seed,
            shared_batches=shared_batches,
        )
    return results


def speedup_table(results: dict[str, ExperimentResult]) -> dict[str, float]:
    """Figure 11's view: per-strategy speedup over the slowest strategy.

    Times are bound by the slowest GPU (max per-GPU average).
    """
    bounds = {
        name: result.metrics.bound_time_ms() for name, result in results.items()
    }
    slowest = max(bounds.values())
    return {name: slowest / bound for name, bound in bounds.items()}
