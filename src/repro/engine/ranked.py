"""Frequency-rank trace representation — the vectorized engine's input.

Every sharding strategy in this repo splits a table's rows in the same
descending-frequency order (the profile's
:class:`~repro.stats.cdf.FrequencyCDF` ranking); plans differ only in
where they cut that ranking into tier blocks and which device owns the
table.  That makes the *rank* of a hashed index — its position in the
profile's frequency ordering — a plan-independent quantity, and it is
the only per-lookup quantity any tier accounting ever needs:

* the tier serving a lookup is the tier block its rank falls in
  (``searchsorted`` over the plan's cumulative ``rows_per_tier``);
* a device-cache hit is simply ``rank < cached_rows`` because the
  remapping layer (Section 4.3) packs each table's hottest rows first.

:class:`RankRemapper` performs this hashed-index → rank translation
once per trace, mirroring the paper's remapping transform that runs in
the data-loading pipeline, outside the training critical path.  The
resulting :class:`RankedBatch` can then be replayed against *any*
number of plans with pure threshold counting — no per-lookup gathers,
no per-row Python — which is where the vectorized
:class:`~repro.engine.executor.ShardedExecutor` gets its speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batch import JaggedBatch, JaggedFeature


@dataclass(frozen=True)
class RankedFeature:
    """One feature's lookups translated to frequency-rank space.

    Attributes:
        ranks: frequency rank of each lookup, shape ``(total_lookups,)``
            — rank 0 is the table's expectedly-hottest row.  Stored as
            ``int32`` whenever the table fits (all paper-scale tables
            do), halving the memory traffic of every counting pass.
        offsets: segment offsets, shape ``(batch_size + 1,)`` — same
            jagged layout as :class:`~repro.data.batch.JaggedFeature`.
    """

    ranks: np.ndarray
    offsets: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.offsets.size - 1

    @property
    def total_lookups(self) -> int:
        return int(self.ranks.size)


@dataclass(frozen=True)
class RankedBatch:
    """A full batch in rank space: one :class:`RankedFeature` per table.

    Produced by :meth:`RankRemapper.rank_batch`; consumed by
    :meth:`~repro.engine.executor.ShardedExecutor.run_ranked`.  A ranked
    batch is tied to the profile whose ranking produced it, but not to
    any plan — the same ranked trace replays against every strategy.
    """

    features: tuple[RankedFeature, ...]

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def batch_size(self) -> int:
        return self.features[0].batch_size if self.features else 0

    @property
    def total_lookups(self) -> int:
        return sum(f.total_lookups for f in self.features)

    def __iter__(self):
        return iter(self.features)

    def __getitem__(self, feature_index: int) -> RankedFeature:
        return self.features[feature_index]


class RankRemapper:
    """Translates hashed embedding indices to frequency ranks.

    One remapper serves every strategy evaluated against a given
    profile: build it once per (model, profile) pair and share the
    ranked traces it produces.

    Args:
        profile: a :class:`~repro.stats.profiler.ModelProfile`; each
            table's ``cdf.row_order`` defines the ranking.

    Example::

        remapper = RankRemapper(profile)
        ranked = [remapper.rank_batch(b) for b in batches]
        for executor in executors:          # one per strategy
            metrics = executor.run(ranked)  # no re-ranking per strategy
    """

    def __init__(self, profile):
        self._rank_of_row: list[np.ndarray] = []
        for stats in profile:
            order = np.asarray(stats.cdf.row_order, dtype=np.int64)
            dtype = np.int32 if order.size <= np.iinfo(np.int32).max else np.int64
            rank = np.empty(order.size, dtype=dtype)
            rank[order] = np.arange(order.size, dtype=dtype)
            self._rank_of_row.append(rank)
        # Global rank space: table j owns ranks [rank_base[j], rank_base[j+1]).
        self.rank_base = np.zeros(len(self._rank_of_row) + 1, dtype=np.int64)
        np.cumsum([r.size for r in self._rank_of_row], out=self.rank_base[1:])
        self._fused_rank: list[np.ndarray] | None = None

    @property
    def num_tables(self) -> int:
        return len(self._rank_of_row)

    @property
    def fused_dtype(self) -> np.dtype:
        """Storage dtype of the base-shifted global rank space."""
        if self.rank_base[-1] <= np.iinfo(np.int32).max:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def fused_rank(self, table_index: int) -> np.ndarray:
        """Table's rank map shifted into the global rank space.

        ``fused_rank(j)[row] == rank_of(row) + rank_base[j]`` — one
        gather through it lands a lookup directly in the concatenated
        rank space, which is what lets the executor's fused jagged path
        count every table's tiers with a single ``searchsorted`` +
        ``bincount`` over one flat buffer instead of per-feature scans.
        Built lazily (it duplicates the rank tables' memory).
        """
        if self._fused_rank is None:
            dtype = self.fused_dtype
            self._fused_rank = [
                rank.astype(dtype) + dtype.type(self.rank_base[j])
                for j, rank in enumerate(self._rank_of_row)
            ]
        return self._fused_rank[table_index]

    def rank_dtype(self, table_index: int) -> np.dtype:
        """Rank storage dtype of one table (int32 unless the table is huge)."""
        return self._rank_of_row[table_index].dtype

    def rank_into(
        self, table_index: int, values: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Rank one table's lookups into a caller-provided buffer.

        The allocation-free variant of :meth:`rank_feature`, used by
        :func:`~repro.engine.executor.replay_trace` to keep the rank
        scratch cache-resident across plans.
        """
        if values.size:
            np.take(self._rank_of_row[table_index], values, out=out)
        return out

    def rank_feature(self, table_index: int, feature: JaggedFeature) -> RankedFeature:
        """Rank one feature's lookups (one gather, int32 output)."""
        values = feature.values
        if values.size == 0:
            ranks = np.empty(0, dtype=self._rank_of_row[table_index].dtype)
        else:
            ranks = np.take(self._rank_of_row[table_index], values)
        return RankedFeature(ranks, feature.offsets)

    def rank_batch(self, batch: JaggedBatch) -> RankedBatch:
        """Translate a whole jagged batch to rank space."""
        if batch.num_features != self.num_tables:
            raise ValueError(
                f"batch has {batch.num_features} features, remapper covers "
                f"{self.num_tables} tables"
            )
        return RankedBatch(
            tuple(
                self.rank_feature(j, feature) for j, feature in enumerate(batch)
            )
        )

    def rank_trace(self, batches) -> list[RankedBatch]:
        """Rank a sequence of batches (amortizes across strategies)."""
        return [self.rank_batch(b) for b in batches]
