"""Composable classification-lane registry for the executor.

Every fast path the executor supports — tier membership, the device
cache, tier staging, hot-row replication, and table-wise-row-wise
strategy cuts — reduces to the same primitive, because the remapping
packs each table's rows in descending frequency order: *count the
lookups whose rank falls below a per-table cumulative cutoff*.  This
module makes that explicit.  A :class:`Lane` is one named per-table
cutoff vector with a role; a :class:`LaneRegistry` is the ordered set
the executor classifies against.

Registration buys each lane both execution paths for free:

* the **fused vectorized** path computes one prefix count per lane over
  the whole batch's flat rank buffer (three linear passes: repeat,
  compare, segmented reduce — see ``ShardedExecutor._classify_fused``);
* the **scalar reference** path computes the same prefix count per
  feature with one threshold scan (``_scan_feature``) or reconstructs
  ranks through the remapping tables (``_classify_scalar``).

Both paths feed the shared reduction, so identical prefix counts mean
bit-identical metrics — the per-lane parity gate the tests and benches
pin.

Lane roles:

``bound``
    Tier boundary ``t`` (cumulative rows through tier ``t``); prefix
    differences between consecutive bound lanes are the per-tier
    counts.  The last tier needs no lane — its count is the remainder.
``hit``
    Tier ``t``'s fast-lane cutoff (device cache for tier 0, staging
    for cold tiers); registered only for tiers where some table's
    cutoff sits strictly above the tier's lower boundary.
``replica``
    The replica-lane cutoff: ranks below it exist on every device and
    are routed least-loaded at reduce time.
``cut``
    One interior rank cut point of a table-wise-row-wise strategy
    split (slot ``index`` across all tables; tables with fewer cuts
    carry a zero edge, whose prefix count is zero by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Lane:
    """One registered classification lane.

    ``edges[j]`` is table ``j``'s cumulative rank cutoff; a lookup of
    table ``j`` is *in* the lane when its frequency rank is strictly
    below that edge.  ``edges_list`` is the plain-int copy the scalar
    per-feature scans index (numpy scalar extraction is expensive at
    hundreds of tables per batch).
    """

    name: str
    role: str  # "bound" | "hit" | "replica" | "cut"
    index: int  # tier for bound/hit, cut slot for cut, 0 for replica
    edges: np.ndarray
    edges_list: tuple[int, ...]


def _make_lane(name: str, role: str, index: int, edges) -> Lane:
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    return Lane(name, role, index, edges, tuple(int(e) for e in edges))


class LaneRegistry:
    """The ordered lane set one executor classifies every batch against."""

    def __init__(self, lanes):
        self.lanes = tuple(lanes)
        by_role: dict[str, list[Lane]] = {}
        for lane in self.lanes:
            by_role.setdefault(lane.role, []).append(lane)
        replicas = by_role.get("replica", [])
        if len(replicas) > 1:
            raise ValueError("at most one replica lane")
        self.replica: Lane | None = replicas[0] if replicas else None
        self.cuts: tuple[Lane, ...] = tuple(
            sorted(by_role.get("cut", []), key=lambda lane: lane.index)
        )
        self._hits = {lane.index: lane for lane in by_role.get("hit", [])}
        self._bounds = {lane.index: lane for lane in by_role.get("bound", [])}

    def __iter__(self):
        return iter(self.lanes)

    def __len__(self) -> int:
        return len(self.lanes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(lane.name for lane in self.lanes)

    def hit(self, tier: int) -> Lane | None:
        """Tier ``tier``'s fast-lane cutoff lane, if registered."""
        return self._hits.get(tier)

    def bound(self, tier: int) -> Lane | None:
        """Tier ``tier``'s boundary lane (``None`` for the last tier)."""
        return self._bounds.get(tier)


def build_lanes(
    tier_bounds: np.ndarray,
    tier_cutoffs: np.ndarray,
    hit_tiers,
    replica_cut: np.ndarray | None = None,
    strategy_cuts: np.ndarray | None = None,
) -> LaneRegistry:
    """Register every lane one executor configuration needs.

    Args:
        tier_bounds: ``(tables, tiers)`` cumulative tier boundaries.
        tier_cutoffs: ``(tables, tiers)`` fast-lane cutoffs (cache /
            staging), already clamped into each tier's interval.
        hit_tiers: tiers whose cutoff is active for at least one table.
        replica_cut: per-table replica cutoffs, or ``None``.
        strategy_cuts: ``(tables, slots)`` twrw interior cut points
            (zero-padded), or ``None``.

    The order — replica, strategy cuts, then per tier hit and bound —
    is the classification pass order of both execution paths.
    """
    num_tiers = tier_bounds.shape[1]
    lanes: list[Lane] = []
    if replica_cut is not None:
        lanes.append(_make_lane("replica", "replica", 0, replica_cut))
    if strategy_cuts is not None:
        for slot in range(strategy_cuts.shape[1]):
            lanes.append(
                _make_lane(f"cut:{slot}", "cut", slot, strategy_cuts[:, slot])
            )
    for t in range(num_tiers):
        if t in hit_tiers:
            lanes.append(_make_lane(f"hit:{t}", "hit", t, tier_cutoffs[:, t]))
        if t < num_tiers - 1:
            lanes.append(
                _make_lane(f"bound:{t}", "bound", t, tier_bounds[:, t])
            )
    return LaneRegistry(lanes)
