"""Trace structures (re-exported; defined beside the generator).

The jagged batch containers live in :mod:`repro.data.batch` because both
the data generator and the engine consume them; this module re-exports
them under the engine namespace for discoverability.
"""

from repro.data.batch import JaggedBatch, JaggedFeature

__all__ = ["JaggedBatch", "JaggedFeature"]
