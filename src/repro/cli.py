"""Command-line interface: profile, shard, replay, and serve from a shell.

Examples::

    python -m repro characterize --model rm1
    python -m repro shard --model rm2 --gpus 16 --formulation convex
    python -m repro plan --model rm2 --sweep hbm=0.5,1,2
    python -m repro plan --model rm2 --sweep gpus=8,16,32
    python -m repro plan --model rm3 --sweep tiers=2,3,4
    python -m repro plan --model rm2 --replicate-gib 1
    python -m repro plan --model rm2 --sweep replicate=0,0.5,1,2
    python -m repro plan --model rm2 --strategies auto
    python -m repro plan --model rm2 --sweep strategies=row,column,table,auto
    python -m repro plan --model rm2 --precisions uvm=fp16
    python -m repro plan --model rm2 --sweep precisions=fp32,fp16,int8,int4
    python -m repro compare --model rm3 --features 97 --gpus 8 --iters 3
    python -m repro replay --model rm2 --vectorized --iters 3
    python -m repro serve --model rm2 --qps 20000 --requests 4000
    python -m repro serve --model rm2 --reference --requests 4000
    python -m repro serve --model rm3 --tiers hbm,dram:8,ssd --staging-gib 2
    python -m repro serve --model rm3 --tiers hbm,dram:8,ssd \
        --precisions dram=fp16,ssd=int8
    python -m repro serve --model rm2 --replicate-gib 1
    python -m repro serve --model rm2 --workers 4 --requests 20000
    python -m repro serve --model rm2 --workers 2 --paced --burst \
        --arrival-rate 30000 --queue-depth 2
    python -m repro serve --model rm2 --replicate-gib 1 \
        --chaos fail@250:1,recover@900:1
    python -m repro serve --model rm2 --workers 2 --chaos kill@100:0
    python -m repro serve --model rm2 --slo-ms 5 --deadline-ms 8 \
        --priorities gold=0.1,silver=0.3,bronze=0.6
    python -m repro serve --model rm3 --tiers hbm,dram:8,ssd \
        --slo-ms 5 --brownout --report-json metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.baselines import make_baseline
from repro.core import (
    MultiTierSharder,
    PlanError,
    PlannerWorkspace,
    RecShardFastSharder,
    RecShardSharder,
    ReplicationPolicy,
    plan_with_replication,
    plan_with_strategies,
    resolve_strategy_kinds,
    shard_sweep,
)
from repro.data.drift import DriftModel
from repro.data.model import rm1, rm2, rm3
from repro.data.synthetic import TraceGenerator
from repro.engine import ShardedExecutor, TierStagingModel, compare_strategies
from repro.engine.harness import speedup_table
from repro.memory import (
    GIB,
    node_from_tier_names,
    paper_node,
    paper_scales,
    tier_ladder_node,
)
from repro.serving import (
    BurstyArrivals,
    LookupServer,
    MultiProcessServer,
    OverloadControl,
    PoissonArrivals,
    ServingConfig,
    generate_request_arenas,
    parse_chaos_spec,
    parse_priority_spec,
    synthetic_request_arenas,
)
from repro.stats import analytic_profile
from repro.stats.summary import characterization_summary, format_summary

_MODELS = {"rm1": rm1, "rm2": rm2, "rm3": rm3}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", choices=sorted(_MODELS), default="rm2",
        help="workload from Table 2 (default: rm2)",
    )
    parser.add_argument(
        "--features", type=int, default=397,
        help="number of sparse features (default: the paper's 397)",
    )
    parser.add_argument(
        "--gpus", type=int, default=16, help="simulated GPUs (default: 16)"
    )
    parser.add_argument(
        "--batch", type=int, default=2048, help="batch size (default: 2048)"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="feature population seed"
    )


def _build_world(args):
    """Model + topology with capacity regimes matched to the paper.

    ``--tiers`` (where the subcommand offers it) swaps the default
    two-tier node for an arbitrary preset hierarchy, capacity-scaled
    with the same knobs.
    """
    topo_scale, row_scale = paper_scales(args.features, args.gpus)
    model = _MODELS[args.model](
        num_features=args.features, row_scale=row_scale, seed=args.seed
    )
    tiers = getattr(args, "tiers", None)
    if tiers:
        topology = node_from_tier_names(
            tiers, num_gpus=args.gpus, scale=topo_scale
        )
    else:
        topology = paper_node(num_gpus=args.gpus, scale=topo_scale)
    precisions = getattr(args, "precisions", None)
    if precisions:
        try:
            topology = topology.with_precisions(precisions)
        except ValueError as error:
            # Same exit contract as argparse's own bad-argument path.
            print(f"error: --precisions: {error}", file=sys.stderr)
            raise SystemExit(2) from error
    return model, topology


def _cmd_characterize(args) -> int:
    model, _ = _build_world(args)
    profile = analytic_profile(model)
    print(f"characterization of {model.name} "
          f"({model.num_tables} features, {model.total_bytes / 2**20:.0f} MiB):")
    print(format_summary(characterization_summary(profile)))
    return 0


def _make_recshard(args):
    if args.milp_time <= 0:
        return RecShardFastSharder(
            batch_size=args.batch, name="RecShard",
            reclaim_dead=args.reclaim_dead,
        )
    return RecShardSharder(
        batch_size=args.batch,
        steps=args.steps,
        formulation=args.formulation,
        time_limit=args.milp_time,
        reclaim_dead=args.reclaim_dead,
        name="RecShard",
    )


def _cmd_shard(args) -> int:
    model, topology = _build_world(args)
    profile = analytic_profile(model)
    plan = _make_recshard(args).shard(model, profile, topology)
    plan.validate(model, topology)
    summary = plan.summary(model, topology)
    print(f"plan for {model.name} on {args.gpus} GPUs "
          f"(solver: {plan.metadata.get('solver', '-')}):")
    print(f"  rows on UVM: {summary['uvm_row_fraction']:.1%}")
    print(f"  mean per-table UVM fraction: "
          f"{summary['mean_table_uvm_fraction']:.1%}")
    print(f"  tables per GPU: {summary['tables_per_device']}")
    if "objective_ms" in plan.metadata:
        print(f"  MILP objective: {plan.metadata['objective_ms']:.4f} ms "
              f"({plan.metadata.get('milp_status')}, "
              f"{plan.metadata.get('solve_seconds', 0):.1f}s)")
    return 0


def _parse_sweep(spec: str):
    """Parse ``hbm=…`` / ``gpus=…`` / ``tiers=…`` / ``replicate=…`` /
    ``strategies=…`` / ``precisions=…`` grids.

    Float grids (``hbm``, ``replicate``) are validated up front by
    :func:`~repro.core.workspace.validate_scale_grid` inside
    ``shard_sweep``; integer grids are checked here so a bad point
    fails at parse time with the offending value named, not deep in
    the waterfill.
    """
    kind, _, values = spec.partition("=")
    if (
        kind
        not in ("hbm", "gpus", "tiers", "replicate", "strategies", "precisions")
        or not values
    ):
        raise ValueError(
            f"--sweep expects hbm=<scales>, gpus=<counts>, "
            f"tiers=<counts>, replicate=<GiB>, "
            f"strategies=<kinds>, or precisions=<names>, got {spec!r}"
        )
    if kind in ("hbm", "replicate"):
        return kind, [float(v) for v in values.split(",")]
    if kind in ("strategies", "precisions"):
        return kind, [v.strip() for v in values.split(",") if v.strip()]
    parsed = [int(v) for v in values.split(",")]
    for value in parsed:
        if value < 1:
            raise ValueError(
                f"sweep point {kind}={value}: grid values must be >= 1"
            )
    return kind, parsed


def _cmd_plan(args) -> int:
    """Build plans on the vectorized planner engine, optionally a sweep."""
    model, topology = _build_world(args)
    profile = analytic_profile(model)
    sharder = RecShardFastSharder(
        batch_size=args.batch,
        steps=args.steps,
        reclaim_dead=args.reclaim_dead,
        vectorized=args.plan_vectorized,
        name="RecShard",
    )
    if args.replicate_gib < 0:
        print("error: --replicate-gib must be >= 0", file=sys.stderr)
        return 2
    topo_scale = paper_scales(args.features, args.gpus)[0]
    if args.strategies:
        if args.sweep:
            print("error: --strategies builds one plan; use "
                  "--sweep strategies=... for a strategy grid",
                  file=sys.stderr)
            return 2
        if args.replicate_gib > 0:
            print("error: strategy plans do not compose with "
                  "--replicate-gib", file=sys.stderr)
            return 2
        if not args.plan_vectorized:
            print("error: --strategies requires the vectorized planner",
                  file=sys.stderr)
            return 2
        try:
            tokens = resolve_strategy_kinds(args.strategies.split(","))
        except ValueError as error:
            print(f"error: --strategies: {error}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        workspace = PlannerWorkspace(model, profile, steps=args.steps)
        try:
            plan = plan_with_strategies(
                sharder, model, profile, topology,
                strategies=tokens, workspace=workspace,
            )
        except PlanError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        build_ms = (time.perf_counter() - start) * 1e3
        summary = plan.summary(model, topology)
        counts = plan.strategy_counts()
        mix = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        print(f"strategy plan for {model.name} on {args.gpus} GPUs "
              f"(kinds: {','.join(tokens)}):")
        print(f"  per-table strategies: {mix}")
        print(f"  split tables: {summary['split_tables']}")
        print(f"  rows on UVM: {summary['uvm_row_fraction']:.1%}")
        print(f"  row-only est. max GPU cost: "
              f"{plan.metadata['row_only_max_cost_ms']:.4f} ms")
        print(f"  estimated max GPU cost: "
              f"{plan.metadata['estimated_max_cost_ms']:.4f} ms")
        print(f"  plan build wall-clock: {build_ms:.1f} ms")
        return 0
    if not args.sweep:
        replicated = None
        start = time.perf_counter()
        if args.replicate_gib > 0:
            # Budgets are specified at paper scale, like every other
            # capacity knob, and shrunk with the topology.
            policy = ReplicationPolicy(
                capacity_bytes=int(args.replicate_gib * GIB * topo_scale)
            )
            try:
                replicated = plan_with_replication(
                    sharder, model, profile, topology, policy
                )
            except PlanError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            plan = replicated.plan
        else:
            plan = sharder.shard(model, profile, topology)
        build_ms = (time.perf_counter() - start) * 1e3
        if replicated is not None:
            replicated.validate(model, topology)
        else:
            plan.validate(model, topology)
        summary = plan.summary(model, topology)
        path = "vectorized" if args.plan_vectorized else "scalar reference"
        print(f"plan for {model.name} on {args.gpus} GPUs ({path} planner):")
        print(f"  rows on UVM: {summary['uvm_row_fraction']:.1%}")
        print(f"  estimated max GPU cost: "
              f"{plan.metadata['estimated_max_cost_ms']:.4f} ms")
        print(f"  tables per GPU: {summary['tables_per_device']}")
        if replicated is not None:
            rep = replicated.summary(model, topology)
            print(f"  replicated rows: {rep['replicated_rows']} "
                  f"(from {rep['replicated_tables']} tables, "
                  f"budget {args.replicate_gib:g} GiB/GPU paper-scale)")
            print(f"  replica bytes/GPU: "
                  f"{rep['max_replica_bytes_per_device']} max of "
                  f"{rep['budget_bytes_per_device']} budgeted")
        print(f"  plan build wall-clock: {build_ms:.1f} ms")
        return 0
    if not args.plan_vectorized:
        print("error: --sweep requires the vectorized planner", file=sys.stderr)
        return 2
    try:
        kind, values = _parse_sweep(args.sweep)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    workspace = PlannerWorkspace(model, profile, steps=args.steps)
    try:
        if kind == "hbm":
            plans = shard_sweep(
                workspace, sharder=sharder, budgets=values,
                base_topology=topology,
            )
        elif kind == "replicate":
            # Hot-row replica budget grid: each point carves the budget
            # out of HBM, shards the remainder, and spends the carved
            # bytes on replicas of the globally hottest rows.
            plans = shard_sweep(
                workspace, sharder=sharder, replicate_gib=values,
                base_topology=topology, replicate_scale=topo_scale,
            )
        elif kind == "strategies":
            # Strategy-kind grid: each point enumerates one strategy
            # family (plus the row fallback) over the shared workspace.
            plans = shard_sweep(
                workspace, sharder=sharder, strategies=values,
                base_topology=topology,
            )
        elif kind == "precisions":
            # Cold-tier precision grid: each point stores every tier
            # past the fastest at one quantized encoding (fp32 is the
            # unquantized baseline point).
            plans = shard_sweep(
                workspace, sharder=sharder, precisions=values,
                base_topology=topology,
            )
        elif kind == "tiers":
            # Tier-count grid (Section 4.4): every point is a prefix of
            # the preset tier ladder, solved by the vectorized
            # multi-tier greedy over the same workspace.
            topologies = [
                tier_ladder_node(t, num_gpus=args.gpus, scale=topo_scale)
                for t in values
            ]
            plans = shard_sweep(
                workspace,
                sharder=MultiTierSharder(
                    batch_size=args.batch, steps=args.steps
                ),
                topologies=topologies,
                labels=[f"tiers={t}" for t in values],
            )
        else:
            topologies = [
                paper_node(num_gpus=g, scale=paper_scales(args.features, g)[0])
                for g in values
            ]
            plans = shard_sweep(
                workspace, sharder=sharder, topologies=topologies
            )
    except PlanError as error:
        # The model is row-scaled to --gpus (see _build_world); grid
        # points with much less aggregate capacity can be genuinely
        # infeasible.
        print(f"error: {error} (the workload is sized for --gpus "
              f"{args.gpus}; smaller grid points may not fit it)",
              file=sys.stderr)
        return 2
    elapsed_ms = (time.perf_counter() - start) * 1e3
    print(f"{kind} sweep for {model.name} "
          f"({len(plans)} plans, one shared workspace):")
    print(f"{'point':>16}  {'off-HBM rows':>12}  {'est. max GPU ms':>15}")
    for plan in plans:
        total_rows = sum(p.total_rows for p in plan)
        spilled = 1.0 - plan.tier_rows_total(0) / total_rows if total_rows else 0.0
        print(f"{plan.metadata['sweep_key']:>16}  {spilled:>12.1%}  "
              f"{plan.metadata['estimated_max_cost_ms']:>15.4f}")
    print(f"sweep wall-clock: {elapsed_ms:.1f} ms "
          f"({elapsed_ms / len(plans):.1f} ms/plan incl. workspace build)")
    return 0


def _cmd_compare(args) -> int:
    model, topology = _build_world(args)
    profile = analytic_profile(model)
    sharders = [
        make_baseline("Size-Based"),
        make_baseline("Lookup-Based"),
        make_baseline("Size-Based-Lookup"),
        _make_recshard(args),
    ]
    results = compare_strategies(
        model, sharders, topology,
        batch_size=args.batch, iterations=args.iters, profile=profile,
    )
    print(f"{model.name} on {args.gpus} GPUs, batch {args.batch}, "
          f"{args.iters} iterations:")
    print(f"{'strategy':>20}  {'min/max/mean/std (ms)':>28}  {'UVM share':>9}")
    for name, result in results.items():
        stats = result.metrics.iteration_stats()
        uvm = result.metrics.tier_access_fraction("uvm")
        print(f"{name:>20}  {stats.as_row():>28}  {uvm:>9.2%}")
    speedups = speedup_table(results)
    next_best = max(v for k, v in speedups.items() if k != "RecShard")
    print(f"\nRecShard speedup vs slowest:   {speedups['RecShard']:.2f}x")
    print(f"RecShard speedup vs next best: "
          f"{speedups['RecShard'] / next_best:.2f}x")
    return 0


def _cmd_replay(args) -> int:
    """Replay a seeded trace against one plan and time the engine itself."""
    if args.iters < 1:
        print("error: --iters must be >= 1", file=sys.stderr)
        return 2
    model, topology = _build_world(args)
    profile = analytic_profile(model)
    plan = _make_recshard(args).shard(model, profile, topology)
    executor = ShardedExecutor(
        model, plan, profile, topology, vectorized=args.vectorized
    )
    generator = TraceGenerator(model, batch_size=args.batch, seed=2024)
    batches = list(generator.batches(args.iters))
    executor.run_batch(batches[0])  # warm caches and lazy structures
    start = time.perf_counter()
    metrics = executor.run(batches)
    elapsed = time.perf_counter() - start
    lookups = sum(b.total_lookups for b in batches)
    mode = "vectorized" if args.vectorized else "scalar"
    stats = metrics.iteration_stats()
    print(f"replayed {args.iters} x {args.batch} samples of {model.name} "
          f"on {args.gpus} GPUs ({mode} engine):")
    print(f"  simulated per-GPU ms min/max/mean/std: {stats.as_row()}")
    print(f"  UVM access share: {metrics.tier_access_fraction('uvm'):.2%}")
    print(f"  replay wall-clock: {elapsed * 1e3:.1f} ms "
          f"({lookups / max(elapsed, 1e-9):.3g} lookups/s)")
    return 0


def _dump_report_json(path, metrics) -> None:
    """Write the ServingMetrics summary to ``path`` as JSON (if set)."""
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(metrics.summary(), fh, indent=2, sort_keys=True,
                  default=float)
        fh.write("\n")
    print(f"wrote metrics summary to {path}")


def _cmd_serve(args) -> int:
    """Run a seeded synthetic serving workload and report QPS/latency."""
    if args.arrival_rate is not None:
        if args.arrival_rate <= 0:
            print("error: --arrival-rate must be > 0", file=sys.stderr)
            return 2
        args.qps = args.arrival_rate
    if args.qps <= 0:
        print("error: --qps must be > 0", file=sys.stderr)
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.queue_depth is not None and args.queue_depth < 1:
        print("error: --queue-depth must be >= 1", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos_spec(args.chaos)
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            return 2
    if args.workers and args.drift_months > 0:
        print("error: --workers serves a fixed plan; --drift-months "
              "requires the single-process runtime (--workers 0)",
              file=sys.stderr)
        return 2
    if args.burst and args.drift_months > 0:
        print("error: --burst streams have no drift model; drop "
              "--drift-months", file=sys.stderr)
        return 2
    if args.paced and not args.workers:
        print("error: --paced (wall-clock pacing + shedding) requires "
              "--workers N", file=sys.stderr)
        return 2
    if args.workers and not args.fast_serving:
        print("error: --reference is single-process only; the "
              "multi-process runtime is columnar", file=sys.stderr)
        return 2
    if args.batch_requests < 1:
        print("error: --batch-requests must be >= 1", file=sys.stderr)
        return 2
    if args.max_delay_ms <= 0:
        print("error: --max-delay-ms must be > 0", file=sys.stderr)
        return 2
    if args.staging_gib < 0:
        print("error: --staging-gib must be >= 0", file=sys.stderr)
        return 2
    if args.replicate_gib < 0:
        print("error: --replicate-gib must be >= 0", file=sys.stderr)
        return 2
    if args.burst_qps is not None and args.burst_qps <= 0:
        print("error: --burst-qps must be > 0", file=sys.stderr)
        return 2
    if args.idle_qps is not None and args.idle_qps < 0:
        print("error: --idle-qps must be >= 0", file=sys.stderr)
        return 2
    if args.burst_ms <= 0:
        print("error: --burst-ms must be > 0", file=sys.stderr)
        return 2
    if args.idle_ms <= 0:
        print("error: --idle-ms must be > 0", file=sys.stderr)
        return 2
    if args.slo_ms is not None and args.slo_ms <= 0:
        print("error: --slo-ms must be > 0", file=sys.stderr)
        return 2
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print("error: --deadline-ms must be > 0", file=sys.stderr)
        return 2
    if args.queue_limit_ms is not None and args.queue_limit_ms <= 0:
        print("error: --queue-limit-ms must be > 0", file=sys.stderr)
        return 2
    if args.brownout and args.slo_ms is None:
        print("error: --brownout requires --slo-ms", file=sys.stderr)
        return 2
    priority_names = ()
    priority_shares = None
    if args.priorities:
        try:
            priority_names, priority_shares = parse_priority_spec(
                args.priorities
            )
        except ValueError as exc:
            print(f"error: --priorities: {exc}", file=sys.stderr)
            return 2
    with_qos = args.deadline_ms is not None or priority_shares is not None
    overload = None
    if (
        args.slo_ms is not None
        or args.queue_limit_ms is not None
        or args.brownout
        or with_qos
    ):
        overload = OverloadControl(
            slo_ms=args.slo_ms,
            queue_limit_ms=args.queue_limit_ms,
            brownout=args.brownout,
            priority_names=priority_names,
        )
    model, topology = _build_world(args)
    if chaos is not None:
        try:
            chaos.validate_targets(
                topology.num_devices, num_workers=args.workers
            )
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            return 2
    profile = analytic_profile(model)
    config = ServingConfig(
        max_batch_size=args.batch_requests,
        max_delay_ms=args.max_delay_ms,
        drift_threshold_pct=args.drift_threshold,
        drift_min_samples=args.drift_min_samples,
    )
    # Beyond HBM+UVM the two-tier sharders cannot cut the CDF, so a
    # multi-tier topology is planned (and replanned under drift) by the
    # vectorized multi-tier greedy.
    if topology.num_tiers == 2:
        sharder = _make_recshard(args)
    else:
        sharder = MultiTierSharder(
            batch_size=args.batch, steps=args.steps, method="greedy",
            name="RecShard-multitier",
        )
    # Like every capacity knob, the staging and replica buffers are
    # specified at paper scale and shrunk with the topology.
    topo_scale = paper_scales(args.features, args.gpus)[0]
    staging = None
    if args.staging_gib > 0:
        staging = TierStagingModel(
            capacity_bytes=int(args.staging_gib * GIB * topo_scale)
        )
    replication = None
    if args.replicate_gib > 0:
        replication = ReplicationPolicy(
            capacity_bytes=int(args.replicate_gib * GIB * topo_scale)
        )
    # Stream: inline Poisson by default; an explicit arrival process
    # (bursty on/off) through the loadgen when --burst is given.
    if args.burst:
        process = BurstyArrivals(
            burst_qps=(
                args.burst_qps if args.burst_qps is not None
                else 4.0 * args.qps
            ),
            idle_qps=(
                args.idle_qps if args.idle_qps is not None
                else 0.1 * args.qps
            ),
            burst_ms=args.burst_ms,
            idle_ms=args.idle_ms,
        )
        arenas = generate_request_arenas(
            model, args.requests, process, seed=args.seed,
            deadline_ms=args.deadline_ms,
            priority_shares=priority_shares,
        )
        offered = (f"bursty {process.burst_qps:.0f}/{process.idle_qps:.0f} "
                   f"QPS over {process.burst_ms:g}/{process.idle_ms:g} ms "
                   f"(mean {process.mean_qps:.0f})")
    elif with_qos and args.drift_months <= 0:
        # QoS columns ride the loadgen stream; PoissonArrivals
        # bit-reproduces the inline generator's timestamps, so adding
        # deadlines/priorities changes no arrival or lookup content.
        arenas = generate_request_arenas(
            model, args.requests, PoissonArrivals(args.qps),
            seed=args.seed,
            deadline_ms=args.deadline_ms,
            priority_shares=priority_shares,
        )
        offered = f"offered load {args.qps:.0f} QPS"
    else:
        # The synthetic stream carries drift and the QoS columns
        # together: deadlines/priorities come from a dedicated RNG
        # stream, so they match the undrifted stream's columns
        # bit-for-bit, and the overload controller's EWMA/admission
        # state lives on the server — drift replans swap only the plan.
        drift = None
        if args.drift_months > 0:
            drift = DriftModel(feature_noise=4.0, alpha_noise=4.0)
        arenas = synthetic_request_arenas(
            model,
            num_requests=args.requests,
            qps=args.qps,
            seed=args.seed,
            drift=drift,
            months_per_request=(
                args.drift_months / args.requests if args.requests else 0.0
            ),
            deadline_ms=args.deadline_ms,
            priority_shares=priority_shares,
        )
        offered = f"offered load {args.qps:.0f} QPS"
    tiers = "/".join(topology.tier_names)
    if args.workers:
        server = MultiProcessServer(
            model, profile, topology, sharder=sharder, config=config,
            staging=staging, replication=replication,
            workers=args.workers, queue_depth=args.queue_depth,
            chaos=chaos, overload=overload,
        )
        start = time.perf_counter()
        with server:
            if args.paced:
                metrics = server.serve_paced(arenas)
            else:
                metrics = server.serve_arenas(arenas)
        elapsed = time.perf_counter() - start
        mode = "open-loop paced" if args.paced else "closed-loop"
        print(f"served {model.name} on {args.gpus} GPUs over {tiers} "
              f"({offered}, microbatch <= {args.batch_requests} reqs / "
              f"{args.max_delay_ms:g} ms, {args.workers} worker "
              f"processes, {mode}):")
        for line in server.worker_fault_log:
            print(f"  [supervisor] {line}")
        print(metrics.format_report())
        print(f"wall-clock: {elapsed:.2f} s "
              f"({metrics.num_requests / max(elapsed, 1e-9):.0f} "
              f"sustained QPS)")
        _dump_report_json(args.report_json, metrics)
        return 0
    server = LookupServer(
        model, profile, topology, sharder=sharder, config=config,
        staging=staging, replication=replication, chaos=chaos,
        overload=overload,
    )
    start = time.perf_counter()
    if args.fast_serving:
        metrics = server.serve_arenas(arenas)
    else:
        metrics = server.serve(r for arena in arenas for r in arena)
    elapsed = time.perf_counter() - start
    path = "columnar fast path" if args.fast_serving else "reference object path"
    print(f"served {model.name} on {args.gpus} GPUs over {tiers} "
          f"({offered}, "
          f"microbatch <= {args.batch_requests} reqs / "
          f"{args.max_delay_ms:g} ms, {path}):")
    print(metrics.format_report())
    print(f"simulation wall-clock: {elapsed:.2f} s")
    _dump_report_json(args.report_json, metrics)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RecShard reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_char = sub.add_parser(
        "characterize", help="print the Section 3 feature characterization"
    )
    _add_common(p_char)
    p_char.set_defaults(func=_cmd_characterize)

    p_plan = sub.add_parser(
        "plan",
        help="vectorized planner: one plan or a --sweep grid over one "
             "shared workspace",
    )
    _add_common(p_plan)
    p_plan.add_argument("--steps", type=int, default=100,
                        help="ICDF discretization steps (default: 100)")
    p_plan.add_argument("--reclaim-dead", action="store_true",
                        help="do not charge never-accessed rows to UVM")
    p_plan.add_argument("--replicate-gib", type=float, default=0.0,
                        help="per-GPU (paper-scale) GiB of HBM carved "
                             "out for replicas of the globally hottest "
                             "rows, served least-loaded from any GPU "
                             "(default: off)")
    p_plan.add_argument("--strategies", default=None, metavar="KINDS",
                        help="comma list of per-table sharding strategies "
                             "to enumerate (row, column, table, twrw, or "
                             "auto); the planner scores candidates under "
                             "the shared capacity model and keeps "
                             "per-table winners")
    p_plan.add_argument("--precisions", default=None, metavar="SPEC",
                        help="per-tier storage precisions as "
                             "tier=precision pairs, e.g. uvm=fp16 or "
                             "dram=fp16,ssd=int8 (fp32, fp16, int8, "
                             "int4); quantized tiers admit more rows "
                             "under the same byte budget")
    p_plan.add_argument("--sweep", default=None, metavar="GRID",
                        help="hbm=<scale,...> (HBM budget multiples), "
                             "gpus=<count,...> (device-count grid), "
                             "tiers=<count,...> (tier-ladder depth grid, "
                             "multi-tier greedy planner), "
                             "replicate=<GiB,...> (hot-row replica "
                             "budget grid), strategies=<kinds,...> "
                             "(per-table strategy-family grid), or "
                             "precisions=<name,...> (cold-tier "
                             "quantization grid)")
    mode = p_plan.add_mutually_exclusive_group()
    mode.add_argument("--vectorized", dest="plan_vectorized",
                      action="store_true", default=True,
                      help="workspace-array planner engine (default)")
    mode.add_argument("--scalar", dest="plan_vectorized",
                      action="store_false",
                      help="per-step heapq reference path")
    p_plan.set_defaults(func=_cmd_plan)

    for name, func, helptext in (
        ("shard", _cmd_shard, "produce and summarize a RecShard plan"),
        ("compare", _cmd_compare, "run RecShard against the baselines"),
        ("replay", _cmd_replay, "replay a trace and time the engine"),
        ("serve", _cmd_serve, "run an online serving workload"),
    ):
        p = sub.add_parser(name, help=helptext)
        _add_common(p)
        p.add_argument("--steps", type=int, default=100,
                       help="ICDF discretization steps (default: 100)")
        p.add_argument("--formulation", choices=("convex", "step"),
                       default="convex")
        p.add_argument("--milp-time", type=float, default=15.0,
                       help="MILP budget in seconds; 0 = fast solver only")
        p.add_argument("--reclaim-dead", action="store_true",
                       help="do not charge never-accessed rows to UVM")
        if name in ("compare", "replay"):
            p.add_argument("--iters", type=int, default=3,
                           help="measured iterations (default: 3)")
        if name == "replay":
            mode = p.add_mutually_exclusive_group()
            mode.add_argument(
                "--vectorized", dest="vectorized", action="store_true",
                default=True,
                help="rank-space vectorized engine (default)",
            )
            mode.add_argument(
                "--scalar", dest="vectorized", action="store_false",
                help="per-feature reference engine",
            )
        if name == "serve":
            path = p.add_mutually_exclusive_group()
            path.add_argument(
                "--fast", dest="fast_serving", action="store_true",
                default=True,
                help="columnar arena fast path (default)",
            )
            path.add_argument(
                "--reference", dest="fast_serving", action="store_false",
                help="per-request object path (parity reference)",
            )
            p.add_argument("--tiers", default=None, metavar="NAMES",
                           help="comma-separated tier presets, fastest "
                                "first (hbm,uvm|dram,ssd,hdd); each may "
                                "override its per-GPU GiB as name:GiB, "
                                "e.g. hbm,dram:8,ssd (default: hbm,uvm)")
            p.add_argument("--precisions", default=None, metavar="SPEC",
                           help="per-tier storage precisions as "
                                "tier=precision pairs, e.g. "
                                "dram=fp16,ssd=int8 (fp32, fp16, int8, "
                                "int4); quantized tiers admit more rows "
                                "under the same byte budget")
            p.add_argument("--staging-gib", type=float, default=0.0,
                           help="per-device per-cold-tier staging buffer "
                                "in (paper-scale) GiB: statically-hottest "
                                "cold rows served at the next-faster "
                                "tier's bandwidth (default: off)")
            p.add_argument("--replicate-gib", type=float, default=0.0,
                           help="per-GPU (paper-scale) GiB of the fastest "
                                "tier carved out for replicas of the "
                                "globally hottest rows, routed to the "
                                "least-loaded GPU per lookup "
                                "(default: off)")
            p.add_argument("--qps", type=float, default=20000,
                           help="offered load, requests/s (default: 20000)")
            p.add_argument("--requests", type=int, default=4000,
                           help="stream length (default: 4000)")
            p.add_argument("--batch-requests", type=int, default=256,
                           help="microbatch size cap (default: 256)")
            p.add_argument("--max-delay-ms", type=float, default=2.0,
                           help="microbatching delay budget (default: 2 ms)")
            p.add_argument("--workers", type=int, default=0,
                           help="worker processes for the multi-process "
                                "runtime (0 = single-process simulation; "
                                "N >= 1 serves a fixed plan with real "
                                "concurrency and wall-clock QPS)")
            p.add_argument("--queue-depth", type=int, default=None,
                           help="task-queue bound of the worker pool "
                                "(default: 2 x workers); what paced "
                                "overload sheds against")
            p.add_argument("--paced", action="store_true",
                           help="offer batches on the wall clock at their "
                                "simulated release times and shed on a "
                                "full queue (requires --workers)")
            p.add_argument("--arrival-rate", type=float, default=None,
                           metavar="QPS",
                           help="alias for --qps (open-loop mean arrival "
                                "rate, requests/s)")
            p.add_argument("--burst", action="store_true",
                           help="bursty on/off arrivals instead of steady "
                                "Poisson (burst/idle rates default to "
                                "4x / 0.1x the mean rate)")
            p.add_argument("--burst-qps", type=float, default=None,
                           help="arrival rate inside bursts "
                                "(default: 4 x --qps)")
            p.add_argument("--idle-qps", type=float, default=None,
                           help="arrival rate between bursts "
                                "(default: 0.1 x --qps)")
            p.add_argument("--burst-ms", type=float, default=50.0,
                           help="burst window length (default: 50 ms)")
            p.add_argument("--idle-ms", type=float, default=50.0,
                           help="idle window length (default: 50 ms)")
            p.add_argument("--chaos", default=None, metavar="SPEC",
                           help="scripted fault drill: comma-separated "
                                "kind@ms:target terms with kinds "
                                "fail/degrade/recover/kill, e.g. "
                                "'fail@250:1,recover@900:1' or "
                                "'degrade@100:0x4' (device 0, 4x "
                                "slower); kill targets a worker and "
                                "requires --workers")
            p.add_argument("--drift-months", type=float, default=0.0,
                           help="months of statistics drift to fast-forward "
                                "across the stream (0 = stationary)")
            p.add_argument("--drift-threshold", type=float, default=5.0,
                           help="pooling drift %% that triggers a replan")
            p.add_argument("--drift-min-samples", type=int, default=1024,
                           help="samples before a replan may trigger")
            p.add_argument("--slo-ms", type=float, default=None,
                           help="latency SLO the overload controller "
                                "defends; enables priority shedding (with "
                                "--priorities) and brownout (with "
                                "--brownout)")
            p.add_argument("--deadline-ms", type=float, default=None,
                           help="per-request deadline budget; requests "
                                "predicted to miss arrival+budget are shed "
                                "early (cause 'deadline')")
            p.add_argument("--priorities", default=None, metavar="SPEC",
                           help="priority classes as name=share terms, "
                                "e.g. 'gold=0.1,silver=0.3,bronze=0.6'; "
                                "class order is shed order (first listed "
                                "is never shed)")
            p.add_argument("--brownout", action="store_true",
                           help="enable degraded-mode serving: skip "
                                "cold-tier home lanes while the windowed "
                                "p99 violates --slo-ms")
            p.add_argument("--queue-limit-ms", type=float, default=None,
                           help="shed whole batches whose predicted "
                                "queueing delay exceeds this bound "
                                "(cause 'overflow')")
            p.add_argument("--report-json", default=None, metavar="PATH",
                           help="write the metrics summary to PATH as "
                                "JSON after serving")
        p.set_defaults(func=func)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
