"""repro: a reproduction of RecShard (ASPLOS 2022).

RecShard is a statistical, feature-based embedding-table sharder for
deep learning recommendation models: it profiles per-feature training
statistics (value-frequency CDF, pooling factor, coverage), then solves
a MILP placing every table - and every row block within a table -
across a tiered HBM/UVM memory hierarchy to minimize the slowest GPU's
embedding cost.

Quickstart::

    from repro import (
        rm1, paper_node, analytic_profile, RecShardSharder, run_experiment,
    )

    model = rm1()
    topology = paper_node(num_gpus=16)
    profile = analytic_profile(model)
    sharder = RecShardSharder(batch_size=4096)
    result = run_experiment(model, sharder, topology, batch_size=4096)
    print(result.table3_row())
"""

from repro.baselines import GreedySharder, make_baseline
from repro.core import (
    MultiTierSharder,
    PlanError,
    PlannerWorkspace,
    RecShardFastSharder,
    RecShardSharder,
    RemappingLayer,
    RemappingTable,
    ShardingPlan,
    TablePlacement,
    expected_device_costs_ms,
    expected_device_costs_ms_many,
    expected_max_cost_ms,
    shard_sweep,
)
from repro.data import (
    DriftModel,
    EmbeddingTableSpec,
    JaggedBatch,
    ModelSpec,
    SparseFeatureSpec,
    TraceGenerator,
    rm1,
    rm2,
    rm3,
)
from repro.engine import (
    CacheModel,
    RankRemapper,
    ShardedExecutor,
    compare_strategies,
    replay_trace,
    run_experiment,
)
from repro.engine.harness import build_profile, speedup_table
from repro.memory import SystemTopology, paper_node, three_tier_node
from repro.serving import (
    LookupRequest,
    LookupServer,
    MicroBatchQueue,
    RequestArena,
    ServingConfig,
    ServingMetrics,
    synthetic_request_arenas,
    synthetic_request_stream,
)
from repro.stats import (
    FrequencyCDF,
    ModelProfile,
    TraceProfiler,
    analytic_profile,
    profile_trace,
)

__version__ = "1.0.0"

__all__ = [
    "CacheModel",
    "DriftModel",
    "EmbeddingTableSpec",
    "FrequencyCDF",
    "GreedySharder",
    "JaggedBatch",
    "LookupRequest",
    "LookupServer",
    "MicroBatchQueue",
    "ModelProfile",
    "ModelSpec",
    "MultiTierSharder",
    "PlanError",
    "PlannerWorkspace",
    "RankRemapper",
    "RecShardFastSharder",
    "RecShardSharder",
    "RemappingLayer",
    "RequestArena",
    "RemappingTable",
    "ServingConfig",
    "ServingMetrics",
    "ShardedExecutor",
    "ShardingPlan",
    "SparseFeatureSpec",
    "SystemTopology",
    "TablePlacement",
    "TraceGenerator",
    "TraceProfiler",
    "analytic_profile",
    "build_profile",
    "compare_strategies",
    "expected_device_costs_ms",
    "expected_device_costs_ms_many",
    "expected_max_cost_ms",
    "make_baseline",
    "paper_node",
    "profile_trace",
    "replay_trace",
    "rm1",
    "rm2",
    "rm3",
    "run_experiment",
    "shard_sweep",
    "speedup_table",
    "synthetic_request_arenas",
    "synthetic_request_stream",
    "three_tier_node",
]
