"""State-of-the-art baseline sharding strategies (Section 5).

Baselines follow a two-step recipe: assign each table a fixed cost
(Size, Lookup, or Size-and-Lookup), then greedily place whole tables on
the least-loaded GPU, spilling to UVM once HBM saturates.
"""

from repro.baselines.cost import (
    lookup_cost,
    size_cost,
    size_lookup_cost,
)
from repro.baselines.greedy import GreedySharder, make_baseline

__all__ = [
    "GreedySharder",
    "lookup_cost",
    "make_baseline",
    "size_cost",
    "size_lookup_cost",
]
