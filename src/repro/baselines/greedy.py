"""The greedy heuristic sharder used by production baselines (Section 5).

Given per-table costs, sort tables by descending cost and assign each to
the GPU with the lowest accumulated cost.  Tables are whole-table
placements: all rows in HBM if the chosen GPU has room, otherwise all
rows in that GPU's UVM (HBM saturation spill).  This reproduces the
failure mode the paper highlights: cost functions that ignore capacity
(Lookup) oversubscribe some GPUs' HBM and spill hot tables to UVM.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.cost import COST_FUNCTIONS
from repro.core.evaluate import stamp_estimated_costs
from repro.core.plan import PlanError, ShardingPlan, TablePlacement
from repro.memory.topology import SystemTopology


class GreedySharder:
    """Fixed-cost greedy baseline sharder.

    Args:
        cost_fn: maps (table spec, table stats) to a scalar cost.
        name: strategy label used in reports.
    """

    def __init__(self, cost_fn: Callable, name: str):
        self.cost_fn = cost_fn
        self.name = name

    def shard(self, model, profile, topology: SystemTopology) -> ShardingPlan:
        if topology.num_tiers != 2:
            raise ValueError("GreedySharder targets two-tier topologies")
        costs = [
            self.cost_fn(table, stats) for table, stats in zip(model.tables, profile)
        ]
        order = sorted(range(model.num_tables), key=lambda j: -costs[j])

        num_devices = topology.num_devices
        loads = [0.0] * num_devices
        hbm_free = [topology.hbm.capacity_bytes] * num_devices
        host_free = [topology.uvm.capacity_bytes] * num_devices
        placements: list[TablePlacement | None] = [None] * model.num_tables

        for j in order:
            table = model.tables[j]
            # Step II: the GPU with the current lowest sum of costs.
            device = min(range(num_devices), key=lambda m: loads[m])
            if hbm_free[device] >= table.total_bytes:
                rows = (table.num_rows, 0)
                hbm_free[device] -= table.total_bytes
            else:
                # HBM saturated on the chosen GPU: allocate in UVM there,
                # falling back to any GPU with host room.
                if host_free[device] < table.total_bytes:
                    candidates = [
                        m for m in range(num_devices)
                        if host_free[m] >= table.total_bytes
                    ]
                    if not candidates:
                        raise PlanError(
                            f"{self.name}: no device can hold table {j} "
                            f"({table.total_bytes} bytes) in HBM or UVM"
                        )
                    device = min(candidates, key=lambda m: loads[m])
                rows = (0, table.num_rows)
                host_free[device] -= table.total_bytes
            loads[device] += costs[j]
            placements[j] = TablePlacement(
                table_index=j, device=device, rows_per_tier=rows
            )

        plan = ShardingPlan(
            strategy=self.name,
            placements=[p for p in placements if p is not None],
            metadata={"heuristic_loads": loads},
        )
        # The heuristic balances its own fixed costs; the analytic cost
        # model (batched evaluator) scores what that balance actually
        # buys.  The baseline has no batch size of its own, so costs
        # are stamped per-sample (the stamped batch size says so).
        return stamp_estimated_costs(
            plan, model, profile, topology, batch_size=1
        )


def make_baseline(name: str) -> GreedySharder:
    """Build one of the paper's named baselines.

    Valid names: ``"Size-Based"``, ``"Lookup-Based"``,
    ``"Size-Based-Lookup"`` (Table 3's SB / LB / SBL).
    """
    if name not in COST_FUNCTIONS:
        raise KeyError(f"unknown baseline {name!r}; have {sorted(COST_FUNCTIONS)}")
    return GreedySharder(COST_FUNCTIONS[name], name)
