"""Baseline EMB cost functions (Section 5, Step I).

Each function maps (table spec, table stats) to a scalar cost used by
the greedy heuristic.  They intentionally reproduce the baselines'
blind spots: Size ignores access behaviour entirely, Lookup ignores
capacity and coverage, Size-and-Lookup blends the two with a log-size
term approximating caching effects.
"""

from __future__ import annotations

import math


def size_cost(table, stats) -> float:
    """Size [Acun+ HPCA'21, Lui+ ISPASS'21]: hash size x embedding dim."""
    return float(table.num_rows) * table.dim


def lookup_cost(table, stats) -> float:
    """Lookup [Acun+, Lui+]: average pooling factor x embedding dim."""
    return stats.avg_pooling * table.dim


def size_lookup_cost(table, stats) -> float:
    """Size-and-Lookup: lookup cost x log10(hash size).

    The log term adds a non-linearity meant to capture the caching
    benefit of smaller tables (Section 5, third cost function).
    """
    return lookup_cost(table, stats) * math.log10(max(10.0, float(table.num_rows)))


COST_FUNCTIONS = {
    "Size-Based": size_cost,
    "Lookup-Based": lookup_cost,
    "Size-Based-Lookup": size_lookup_cost,
}
